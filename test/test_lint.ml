(* mwlint rule tests: one firing (positive) and one quiet (negative)
   inline fixture per rule, driven through the same engine entry point
   the CLI uses.  The [~path] given to a fixture participates in the
   path-scoped allowlists exactly as a real file's path would, which is
   how the negatives for MONOTONIC-TIME / RAW-IO are expressed — and
   how the BLOCKING-UNDER-LOCK positives pin down that the old server
   exemption really is gone. *)

open Analysis

let check = Alcotest.check

let rule_findings ~path src rule =
  List.filter
    (fun f -> f.Finding.rule = rule)
    (Engine.analyze_string ~path src)

let count ~path src rule = List.length (rule_findings ~path src rule)

let fires name ~path src rule =
  check Alcotest.bool (name ^ ": fires") true (count ~path src rule > 0)

let quiet name ~path src rule =
  check Alcotest.int (name ^ ": quiet") 0 (count ~path src rule)

(* ------------------------------------------------------------------ *)
(* MONOTONIC-TIME                                                      *)
(* ------------------------------------------------------------------ *)

let gettimeofday_src = "let elapsed t0 = Unix.gettimeofday () -. t0\n"

let test_monotonic_positive () =
  fires "gettimeofday in transport code" ~path:"lib/transport/foo.ml"
    gettimeofday_src Rules.monotonic_time

let test_monotonic_negative () =
  (* The session records wall-clock history timestamps by design. *)
  quiet "gettimeofday in the session" ~path:"lib/transport/session.ml"
    gettimeofday_src Rules.monotonic_time;
  quiet "Clock.now anywhere" ~path:"lib/transport/foo.ml"
    "let deadline () = Clock.now () +. 0.5\n" Rules.monotonic_time

(* ------------------------------------------------------------------ *)
(* RAW-IO                                                              *)
(* ------------------------------------------------------------------ *)

let raw_write_src = "let send fd b = Unix.write fd b 0 (Bytes.length b)\n"

let test_raw_io_positive () =
  fires "Unix.write outside netio" ~path:"lib/transport/foo.ml" raw_write_src
    Rules.raw_io

let test_raw_io_negative () =
  quiet "Unix.write inside netio" ~path:"lib/transport/netio.ml" raw_write_src
    Rules.raw_io;
  quiet "Netio wrapper elsewhere" ~path:"lib/transport/foo.ml"
    "let send fd b = Netio.write_all fd b 0 (Bytes.length b)\n" Rules.raw_io

(* ------------------------------------------------------------------ *)
(* CONDITION-WAIT-LOOP                                                 *)
(* ------------------------------------------------------------------ *)

let test_condition_wait_positive () =
  fires "bare Condition.wait" ~path:"lib/foo.ml"
    "let await c m = Condition.wait c m\n" Rules.condition_wait_loop

let test_condition_wait_negative () =
  quiet "wait in a predicate-recheck loop" ~path:"lib/foo.ml"
    "let await c m ready = while not !ready do Condition.wait c m done\n"
    Rules.condition_wait_loop

(* ------------------------------------------------------------------ *)
(* CATCH-ALL-EXN                                                       *)
(* ------------------------------------------------------------------ *)

let test_catch_all_positive () =
  fires "wildcard around a read" ~path:"lib/foo.ml"
    "let recv fd b = try Netio.read fd b 4 with _ -> false\n"
    Rules.catch_all_exn;
  fires "wildcard `exception` case" ~path:"lib/foo.ml"
    "let recv fd b =\n\
    \  match Netio.read fd b 4 with ok -> ok | exception _ -> false\n"
    Rules.catch_all_exn

let test_catch_all_negative () =
  quiet "specific exception" ~path:"lib/foo.ml"
    "let recv fd b = try Netio.read fd b 4 with Unix.Unix_error _ -> false\n"
    Rules.catch_all_exn;
  quiet "wildcard around pure code" ~path:"lib/foo.ml"
    "let parse s = try int_of_string s with _ -> 0\n" Rules.catch_all_exn;
  quiet "wildcard that re-raises" ~path:"lib/foo.ml"
    "let recv fd b = try Netio.read fd b 4 with e -> cleanup (); raise e\n"
    Rules.catch_all_exn

(* ------------------------------------------------------------------ *)
(* BLOCKING-UNDER-LOCK                                                 *)
(* ------------------------------------------------------------------ *)

let test_blocking_positive () =
  fires "sleep under Mutex.protect" ~path:"lib/foo.ml"
    "let m = Mutex.create ()\n\
     let nap () = Mutex.protect m (fun () -> Unix.sleepf 0.1)\n"
    Rules.blocking_under_lock;
  fires "sleep between lock and unlock" ~path:"lib/foo.ml"
    "let m = Mutex.create ()\n\
     let nap () = Mutex.lock m; Unix.sleepf 0.1; Mutex.unlock m\n"
    Rules.blocking_under_lock;
  (* The thread-per-connection server wrote replies under a
     per-connection write lock and carried the rule's only exemptions.
     The reactor's flush path is lock-free, the exemptions are gone,
     and the rule must fire even in server.ml now. *)
  fires "old server exemption removed" ~path:"lib/transport/server.ml"
    "let handle_conn wlock fd b =\n\
    \  Mutex.protect wlock (fun () -> Netio.write_all fd b 0 4)\n"
    Rules.blocking_under_lock;
  (* A reactor shard parking in its poller while holding a lock would
     stall every connection the shard owns: the readiness waits are
     classified as blocking. *)
  fires "poller wait under a lock" ~path:"lib/transport/foo.ml"
    "let m = Mutex.create ()\n\
     let bad p f = Mutex.protect m (fun () -> Netio.Poller.wait p f)\n"
    Rules.blocking_under_lock

let test_blocking_negative () =
  quiet "lock dropped around the syscall" ~path:"lib/foo.ml"
    "let m = Mutex.create ()\n\
     let nap () = Mutex.lock m; Mutex.unlock m; Unix.sleepf 0.1\n"
    Rules.blocking_under_lock;
  (* Netio's non-blocking variants return EAGAIN instead of parking the
     thread: flushing an out-queue under a lock is not a blocking call
     (the reactor does not do even this, but the classification is the
     rule's reactor-aware core). *)
  quiet "non-blocking write under a lock" ~path:"lib/foo.ml"
    "let m = Mutex.create ()\n\
     let f fd b = Mutex.protect m (fun () -> Netio.write_nb fd b 0 4)\n"
    Rules.blocking_under_lock

(* ------------------------------------------------------------------ *)
(* LOCK-ORDER                                                          *)
(* ------------------------------------------------------------------ *)

let test_lock_order_positive () =
  fires "opposite nesting orders" ~path:"lib/foo.ml"
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let f () = Mutex.protect a (fun () -> Mutex.protect b (fun () -> ()))\n\
     let g () = Mutex.protect b (fun () -> Mutex.protect a (fun () -> ()))\n"
    Rules.lock_order;
  (* The second leg of the cycle runs through a call: g holds b and
     calls f, whose transitive acquisitions include a. *)
  fires "cycle through a call site" ~path:"lib/foo.ml"
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let f () = Mutex.protect a (fun () -> Mutex.protect b (fun () -> ()))\n\
     let g () = Mutex.protect b (fun () -> f ())\n"
    Rules.lock_order;
  fires "self-deadlock" ~path:"lib/foo.ml"
    "let a = Mutex.create ()\n\
     let f () = Mutex.protect a (fun () -> Mutex.protect a (fun () -> ()))\n"
    Rules.lock_order

let test_lock_order_negative () =
  quiet "consistent global order" ~path:"lib/foo.ml"
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let f () = Mutex.protect a (fun () -> Mutex.protect b (fun () -> ()))\n\
     let g () = Mutex.protect a (fun () -> Mutex.protect b (fun () -> ()))\n"
    Rules.lock_order;
  (* A closure handed to Thread.create starts on a fresh stack: its
     acquisitions must not count as the spawner's. *)
  quiet "spawned closure is a fresh stack" ~path:"lib/foo.ml"
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let f () =\n\
    \  Mutex.protect a\n\
    \    (fun () ->\n\
    \      ignore (Thread.create (fun () -> Mutex.protect b ignore) ()))\n\
     let g () = Mutex.protect b (fun () -> Mutex.protect a (fun () -> ()))\n"
    Rules.lock_order

(* ------------------------------------------------------------------ *)
(* Baseline mechanics                                                  *)
(* ------------------------------------------------------------------ *)

let finding rule file line =
  { Finding.rule; file; line; message = "m" }

let test_baseline_apply () =
  let entries =
    [
      { Baseline.rule = "RAW-IO"; file = "lib/a.ml"; line = 3; justification = "j" };
      { Baseline.rule = "RAW-IO"; file = "lib/b.ml"; line = 9; justification = "j" };
    ]
  in
  let fs = [ finding "RAW-IO" "lib/a.ml" 3; finding "RAW-IO" "lib/a.ml" 4 ] in
  let fresh, stale = Baseline.apply ~entries fs in
  check Alcotest.int "one unsuppressed finding" 1 (List.length fresh);
  check Alcotest.int "one stale entry" 1 (List.length stale);
  (match stale with
  | [ e ] -> check Alcotest.string "stale is the b.ml entry" "lib/b.ml" e.Baseline.file
  | _ -> Alcotest.fail "expected exactly one stale entry")

let test_baseline_load_rejects_bare () =
  let tmp = Filename.temp_file "mwlint" ".baseline" in
  let oc = open_out tmp in
  output_string oc "RAW-IO lib/a.ml:3\n";
  close_out oc;
  let r = Baseline.load tmp in
  Sys.remove tmp;
  check Alcotest.bool "justification-less line rejected" true
    (match r with Ok _ -> false | Error _ -> true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lint"
    [
      ( "monotonic-time",
        [
          Alcotest.test_case "positive" `Quick test_monotonic_positive;
          Alcotest.test_case "negative" `Quick test_monotonic_negative;
        ] );
      ( "raw-io",
        [
          Alcotest.test_case "positive" `Quick test_raw_io_positive;
          Alcotest.test_case "negative" `Quick test_raw_io_negative;
        ] );
      ( "condition-wait-loop",
        [
          Alcotest.test_case "positive" `Quick test_condition_wait_positive;
          Alcotest.test_case "negative" `Quick test_condition_wait_negative;
        ] );
      ( "catch-all-exn",
        [
          Alcotest.test_case "positive" `Quick test_catch_all_positive;
          Alcotest.test_case "negative" `Quick test_catch_all_negative;
        ] );
      ( "blocking-under-lock",
        [
          Alcotest.test_case "positive" `Quick test_blocking_positive;
          Alcotest.test_case "negative" `Quick test_blocking_negative;
        ] );
      ( "lock-order",
        [
          Alcotest.test_case "positive" `Quick test_lock_order_positive;
          Alcotest.test_case "negative" `Quick test_lock_order_negative;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "apply partitions" `Quick test_baseline_apply;
          Alcotest.test_case "load rejects bare suppressions" `Quick
            test_baseline_load_rejects_bare;
        ] );
    ]
