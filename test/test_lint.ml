(* mwlint rule tests: one firing (positive) and one quiet (negative)
   inline fixture per rule, driven through the same engine entry point
   the CLI uses.  The [~path] given to a fixture participates in the
   path-scoped allowlists exactly as a real file's path would, which is
   how the negatives for MONOTONIC-TIME / RAW-IO are expressed — and
   how the BLOCKING-UNDER-LOCK positives pin down that the old server
   exemption really is gone.

   The shared-state rules (SHARED-ACCESS / ATOMIC-DISCIPLINE) are
   whole-program: their fixtures are one or more full files fed to
   [Engine.analyze] together, exercising the escape pass (spawn
   origins, pre-spawn confinement) and the lock-ownership inference
   (interprocedural held sets, majority owners, the two-locks case). *)

open Analysis

let check = Alcotest.check

let analyze_files files =
  Engine.analyze
    (List.map (fun (path, src) -> Source.parse_string ~path src) files)

let rule_findings_in files rule =
  List.filter (fun f -> f.Finding.rule = rule) (analyze_files files)

let rule_findings ~path src rule = rule_findings_in [ (path, src) ] rule
let count ~path src rule = List.length (rule_findings ~path src rule)

let fires name ~path src rule =
  check Alcotest.bool (name ^ ": fires") true (count ~path src rule > 0)

let quiet name ~path src rule =
  check Alcotest.int (name ^ ": quiet") 0 (count ~path src rule)

let contains hay pat =
  let n = String.length hay and m = String.length pat in
  let rec go i = i + m <= n && (String.sub hay i m = pat || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* MONOTONIC-TIME                                                      *)
(* ------------------------------------------------------------------ *)

let gettimeofday_src = "let elapsed t0 = Unix.gettimeofday () -. t0\n"

let test_monotonic_positive () =
  fires "gettimeofday in transport code" ~path:"lib/transport/foo.ml"
    gettimeofday_src Rules.monotonic_time

let test_monotonic_negative () =
  (* The session records wall-clock history timestamps by design. *)
  quiet "gettimeofday in the session" ~path:"lib/transport/session.ml"
    gettimeofday_src Rules.monotonic_time;
  quiet "Clock.now anywhere" ~path:"lib/transport/foo.ml"
    "let deadline () = Clock.now () +. 0.5\n" Rules.monotonic_time

(* ------------------------------------------------------------------ *)
(* RAW-IO                                                              *)
(* ------------------------------------------------------------------ *)

let raw_write_src = "let send fd b = Unix.write fd b 0 (Bytes.length b)\n"

let test_raw_io_positive () =
  fires "Unix.write outside netio" ~path:"lib/transport/foo.ml" raw_write_src
    Rules.raw_io

let test_raw_io_negative () =
  quiet "Unix.write inside netio" ~path:"lib/transport/netio.ml" raw_write_src
    Rules.raw_io;
  quiet "Netio wrapper elsewhere" ~path:"lib/transport/foo.ml"
    "let send fd b = Netio.write_all fd b 0 (Bytes.length b)\n" Rules.raw_io

(* ------------------------------------------------------------------ *)
(* CONDITION-WAIT-LOOP                                                 *)
(* ------------------------------------------------------------------ *)

let test_condition_wait_positive () =
  fires "bare Condition.wait" ~path:"lib/foo.ml"
    "let await c m = Condition.wait c m\n" Rules.condition_wait_loop

let test_condition_wait_negative () =
  quiet "wait in a predicate-recheck loop" ~path:"lib/foo.ml"
    "let await c m ready = while not !ready do Condition.wait c m done\n"
    Rules.condition_wait_loop

(* ------------------------------------------------------------------ *)
(* CATCH-ALL-EXN                                                       *)
(* ------------------------------------------------------------------ *)

let test_catch_all_positive () =
  fires "wildcard around a read" ~path:"lib/foo.ml"
    "let recv fd b = try Netio.read fd b 4 with _ -> false\n"
    Rules.catch_all_exn;
  fires "wildcard `exception` case" ~path:"lib/foo.ml"
    "let recv fd b =\n\
    \  match Netio.read fd b 4 with ok -> ok | exception _ -> false\n"
    Rules.catch_all_exn

let test_catch_all_negative () =
  quiet "specific exception" ~path:"lib/foo.ml"
    "let recv fd b = try Netio.read fd b 4 with Unix.Unix_error _ -> false\n"
    Rules.catch_all_exn;
  quiet "wildcard around pure code" ~path:"lib/foo.ml"
    "let parse s = try int_of_string s with _ -> 0\n" Rules.catch_all_exn;
  quiet "wildcard that re-raises" ~path:"lib/foo.ml"
    "let recv fd b = try Netio.read fd b 4 with e -> cleanup (); raise e\n"
    Rules.catch_all_exn

(* ------------------------------------------------------------------ *)
(* BLOCKING-UNDER-LOCK                                                 *)
(* ------------------------------------------------------------------ *)

let test_blocking_positive () =
  fires "sleep under Mutex.protect" ~path:"lib/foo.ml"
    "let m = Mutex.create ()\n\
     let nap () = Mutex.protect m (fun () -> Unix.sleepf 0.1)\n"
    Rules.blocking_under_lock;
  fires "sleep between lock and unlock" ~path:"lib/foo.ml"
    "let m = Mutex.create ()\n\
     let nap () = Mutex.lock m; Unix.sleepf 0.1; Mutex.unlock m\n"
    Rules.blocking_under_lock;
  (* The thread-per-connection server wrote replies under a
     per-connection write lock and carried the rule's only exemptions.
     The reactor's flush path is lock-free, the exemptions are gone,
     and the rule must fire even in server.ml now. *)
  fires "old server exemption removed" ~path:"lib/transport/server.ml"
    "let handle_conn wlock fd b =\n\
    \  Mutex.protect wlock (fun () -> Netio.write_all fd b 0 4)\n"
    Rules.blocking_under_lock;
  (* A reactor shard parking in its poller while holding a lock would
     stall every connection the shard owns: the readiness waits are
     classified as blocking. *)
  fires "poller wait under a lock" ~path:"lib/transport/foo.ml"
    "let m = Mutex.create ()\n\
     let bad p f = Mutex.protect m (fun () -> Netio.Poller.wait p f)\n"
    Rules.blocking_under_lock

let test_blocking_negative () =
  quiet "lock dropped around the syscall" ~path:"lib/foo.ml"
    "let m = Mutex.create ()\n\
     let nap () = Mutex.lock m; Mutex.unlock m; Unix.sleepf 0.1\n"
    Rules.blocking_under_lock;
  (* Netio's non-blocking variants return EAGAIN instead of parking the
     thread: flushing an out-queue under a lock is not a blocking call
     (the reactor does not do even this, but the classification is the
     rule's reactor-aware core). *)
  quiet "non-blocking write under a lock" ~path:"lib/foo.ml"
    "let m = Mutex.create ()\n\
     let f fd b = Mutex.protect m (fun () -> Netio.write_nb fd b 0 4)\n"
    Rules.blocking_under_lock

(* ------------------------------------------------------------------ *)
(* LOCK-ORDER                                                          *)
(* ------------------------------------------------------------------ *)

let test_lock_order_positive () =
  fires "opposite nesting orders" ~path:"lib/foo.ml"
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let f () = Mutex.protect a (fun () -> Mutex.protect b (fun () -> ()))\n\
     let g () = Mutex.protect b (fun () -> Mutex.protect a (fun () -> ()))\n"
    Rules.lock_order;
  (* The second leg of the cycle runs through a call: g holds b and
     calls f, whose transitive acquisitions include a. *)
  fires "cycle through a call site" ~path:"lib/foo.ml"
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let f () = Mutex.protect a (fun () -> Mutex.protect b (fun () -> ()))\n\
     let g () = Mutex.protect b (fun () -> f ())\n"
    Rules.lock_order;
  fires "self-deadlock" ~path:"lib/foo.ml"
    "let a = Mutex.create ()\n\
     let f () = Mutex.protect a (fun () -> Mutex.protect a (fun () -> ()))\n"
    Rules.lock_order

let test_lock_order_negative () =
  quiet "consistent global order" ~path:"lib/foo.ml"
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let f () = Mutex.protect a (fun () -> Mutex.protect b (fun () -> ()))\n\
     let g () = Mutex.protect a (fun () -> Mutex.protect b (fun () -> ()))\n"
    Rules.lock_order;
  (* A closure handed to Thread.create starts on a fresh stack: its
     acquisitions must not count as the spawner's. *)
  quiet "spawned closure is a fresh stack" ~path:"lib/foo.ml"
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let f () =\n\
    \  Mutex.protect a\n\
    \    (fun () ->\n\
    \      ignore (Thread.create (fun () -> Mutex.protect b ignore) ()))\n\
     let g () = Mutex.protect b (fun () -> Mutex.protect a (fun () -> ()))\n"
    Rules.lock_order

(* ------------------------------------------------------------------ *)
(* SHARED-ACCESS                                                       *)
(* ------------------------------------------------------------------ *)

(* A module-global record field written by the main thread AND by a
   closure spawned onto another thread, never under any lock. *)
let shared_bare_src =
  "type t = { mutable count : int }\n\
   let g = { count = 0 }\n\
   let bump () = g.count <- g.count + 1\n\
   let run () = ignore (Thread.create bump ()); bump ()\n"

let test_shared_access_positive () =
  fires "bare cross-thread field" ~path:"test/fix_bare.ml" shared_bare_src
    Rules.shared_access;
  (* The spawned closure re-enters the spawner's module: the escape
     pass must follow the call from the spawn frame back into [touch]
     and still see two origins. *)
  fires "spawned closure re-enters its module" ~path:"test/fix_reenter.ml"
    "type t = { mutable hits : int }\n\
     let g = { hits = 0 }\n\
     let touch () = g.hits <- g.hits + 1\n\
     let run () = ignore (Thread.create (fun () -> touch ()) ()); touch ()\n"
    Rules.shared_access

let test_shared_access_partial_coverage () =
  (* Guarded at bump's two sites, bare in sneak: the finding lands on
     the bare site, not on the covered ones. *)
  let fs =
    rule_findings ~path:"test/fix_partial.ml"
      "type t = { mutable count : int }\n\
       let g = { count = 0 }\n\
       let m = Mutex.create ()\n\
       let bump () = Mutex.protect m (fun () -> g.count <- g.count + 1)\n\
       let sneak () = g.count <- 0\n\
       let run () = ignore (Thread.create bump ()); sneak ()\n"
      Rules.shared_access
  in
  check Alcotest.int "one bare site" 1 (List.length fs);
  match fs with
  | [ f ] ->
    check Alcotest.int "anchored at sneak's line" 5 f.Finding.line;
    check Alcotest.bool "names the inferred owner" true
      (contains f.Finding.message "bare here")
  | _ -> Alcotest.fail "expected exactly one finding"

let test_shared_access_two_locks () =
  (* The same field guarded by two DIFFERENT locks in two different
     modules: the locks do not exclude each other, so the minority
     site must be reported even though no site is bare. *)
  let fs =
    rule_findings_in
      [
        ( "test/locka.ml",
          "type t = { mutable shared : int }\n\
           let g = { shared = 0 }\n\
           let la = Mutex.create ()\n\
           let bump () = Mutex.protect la (fun () -> g.shared <- g.shared + 1)\n\
           let run () = ignore (Thread.create bump ()); Lockb.poke ()\n" );
        ( "test/lockb.ml",
          "let lb = Mutex.create ()\n\
           let poke () = Mutex.protect lb (fun () -> Locka.g.shared <- 0)\n" );
      ]
      Rules.shared_access
  in
  check Alcotest.int "minority-lock site reported" 1 (List.length fs);
  match fs with
  | [ f ] ->
    check Alcotest.string "reported in the minority module" "test/lockb.ml"
      f.Finding.file;
    check Alcotest.bool "explains the non-exclusion" true
      (contains f.Finding.message "two different locks")
  | _ -> Alcotest.fail "expected exactly one finding"

let test_shared_access_negative () =
  (* Every thread-shared site under one mutex: fully guarded. *)
  quiet "fully guarded cell" ~path:"test/fix_guarded.ml"
    "type t = { mutable count : int }\n\
     let g = { count = 0 }\n\
     let m = Mutex.create ()\n\
     let bump () = Mutex.protect m (fun () -> g.count <- g.count + 1)\n\
     let run () = ignore (Thread.create bump ()); bump ()\n"
    Rules.shared_access;
  (* The lock is held by the CALLER: the interprocedural held-at-entry
     fixpoint must credit raw's accesses with m. *)
  quiet "lock held across a call" ~path:"test/fix_interproc.ml"
    "type t = { mutable n : int }\n\
     let g = { n = 0 }\n\
     let m = Mutex.create ()\n\
     let raw () = g.n <- g.n + 1\n\
     let bump () = Mutex.protect m (fun () -> raw ())\n\
     let run () = ignore (Thread.create bump ()); bump ()\n"
    Rules.shared_access;
  (* Written only before the spawn, read by nobody else afterwards:
     one thread origin, nothing to race with. *)
  quiet "field only accessed pre-spawn" ~path:"test/fix_prespawn.ml"
    "type t = { mutable count : int }\n\
     let g = { count = 0 }\n\
     let init () = g.count <- 1\n\
     let worker () = print_newline ()\n\
     let run () = init (); ignore (Thread.create worker ())\n"
    Rules.shared_access

(* ------------------------------------------------------------------ *)
(* ATOMIC-DISCIPLINE                                                   *)
(* ------------------------------------------------------------------ *)

let test_atomic_discipline_positive () =
  (* The classic racy shutdown flag: plain bool store in one thread,
     plain load in the spin loop of another. *)
  fires "plain bool flag across threads" ~path:"test/fix_flag.ml"
    "type t = { mutable stop : bool }\n\
     let g = { stop = false }\n\
     let worker () = while not g.stop do ignore 0 done\n\
     let run () = ignore (Thread.create worker ()); g.stop <- true\n"
    Rules.atomic_discipline;
  (* Atomic.get feeding Atomic.set of the same cell is a lost-update
     window regardless of sharing: a single-file rule. *)
  fires "get-then-set is not an RMW" ~path:"test/fix_rmw.ml"
    "let c = Atomic.make 0\n\
     let bump () = Atomic.set c (Atomic.get c + 1)\n"
    Rules.atomic_discipline

let test_atomic_discipline_negative () =
  quiet "Atomic.t flag" ~path:"test/fix_atomic.ml"
    "type t = { stop : bool Atomic.t }\n\
     let g = { stop = Atomic.make false }\n\
     let worker () = while not (Atomic.get g.stop) do ignore 0 done\n\
     let run () = ignore (Thread.create worker ()); Atomic.set g.stop true\n"
    Rules.atomic_discipline;
  quiet "real RMW primitives" ~path:"test/fix_cas.ml"
    "let c = Atomic.make 0\n\
     let bump () = Atomic.incr c\n\
     let flip f = Atomic.compare_and_set f false true\n"
    Rules.atomic_discipline

(* ------------------------------------------------------------------ *)
(* File-order determinism                                               *)
(* ------------------------------------------------------------------ *)

(* Cross-file resolution (decl scoring, callee lookup) must not depend
   on scan order: the same fixture set in any order yields byte-equal
   reports.  This is the property the CLI's sorted [find_ml_files] and
   the baseline keys lean on. *)
let order_fixtures =
  [
    ("test/fix_bare.ml", shared_bare_src);
    ( "test/locka.ml",
      "type t = { mutable shared : int }\n\
       let g = { shared = 0 }\n\
       let la = Mutex.create ()\n\
       let bump () = Mutex.protect la (fun () -> g.shared <- g.shared + 1)\n\
       let run () = ignore (Thread.create bump ()); Lockb.poke ()\n" );
    ( "test/lockb.ml",
      "let lb = Mutex.create ()\n\
       let poke () = Mutex.protect lb (fun () -> Locka.g.shared <- 0)\n" );
    ( "test/fix_flag.ml",
      "type t = { mutable stop : bool }\n\
       let g = { stop = false }\n\
       let worker () = while not g.stop do ignore 0 done\n\
       let run () = ignore (Thread.create worker ()); g.stop <- true\n" );
  ]

let render fs = String.concat "\n" (List.map Finding.to_string fs)

let order_stability_property =
  let reference = render (analyze_files order_fixtures) in
  QCheck.Test.make ~name:"findings independent of file order" ~count:30
    (QCheck.make (QCheck.Gen.shuffle_l order_fixtures))
    (fun files -> render (analyze_files files) = reference)

(* ------------------------------------------------------------------ *)
(* Baseline mechanics                                                  *)
(* ------------------------------------------------------------------ *)

let finding ?(col = 1) rule file line =
  { Finding.rule; severity = Finding.Error; file; line; col; message = "m" }

let entry ?col rule file line =
  { Baseline.rule; file; line; col; justification = "j" }

let test_baseline_apply () =
  let entries =
    [ entry ~col:5 "RAW-IO" "lib/a.ml" 3; entry ~col:9 "RAW-IO" "lib/b.ml" 9 ]
  in
  let fs =
    [
      finding ~col:5 "RAW-IO" "lib/a.ml" 3; finding ~col:5 "RAW-IO" "lib/a.ml" 4;
    ]
  in
  let fresh, stale = Baseline.apply ~entries fs in
  check Alcotest.int "one unsuppressed finding" 1 (List.length fresh);
  check Alcotest.int "one stale entry" 1 (List.length stale);
  match stale with
  | [ e ] ->
    check Alcotest.string "stale is the b.ml entry" "lib/b.ml" e.Baseline.file
  | _ -> Alcotest.fail "expected exactly one stale entry"

let test_baseline_col_is_identity () =
  (* Same rule/file/line at another column is a DIFFERENT finding: a
     column-bearing entry must not swallow it. *)
  let fresh, stale =
    Baseline.apply
      ~entries:[ entry ~col:5 "SHARED-ACCESS" "lib/a.ml" 3 ]
      [ finding ~col:11 "SHARED-ACCESS" "lib/a.ml" 3 ]
  in
  check Alcotest.int "column mismatch is not suppressed" 1 (List.length fresh);
  check Alcotest.int "entry is stale" 1 (List.length stale)

let test_baseline_old_format_matches_any_col () =
  (* Deprecated column-less entry: matches any column on its line for
     one release, so pre-migration baselines keep suppressing. *)
  let fresh, stale =
    Baseline.apply
      ~entries:[ entry "SHARED-ACCESS" "lib/a.ml" 3 ]
      [ finding ~col:11 "SHARED-ACCESS" "lib/a.ml" 3 ]
  in
  check Alcotest.int "old-format entry suppresses" 0 (List.length fresh);
  check Alcotest.int "and is not stale" 0 (List.length stale)

let test_baseline_load_formats () =
  let tmp = Filename.temp_file "mwlint" ".baseline" in
  let oc = open_out tmp in
  output_string oc
    "# comment\nRAW-IO lib/a.ml:3:7 reviewed\nRAW-IO lib/b.ml:9 legacy\n";
  close_out oc;
  let r = Baseline.load tmp in
  Sys.remove tmp;
  match r with
  | Error e -> Alcotest.fail ("load failed: " ^ e)
  | Ok [ a; b ] ->
    check Alcotest.(option int) "new format carries the column" (Some 7)
      a.Baseline.col;
    check Alcotest.int "new format line" 3 a.Baseline.line;
    check Alcotest.(option int) "old format has no column" None b.Baseline.col;
    check Alcotest.int "old format line" 9 b.Baseline.line
  | Ok l -> Alcotest.failf "expected two entries, got %d" (List.length l)

let test_baseline_load_rejects_bare () =
  let tmp = Filename.temp_file "mwlint" ".baseline" in
  let oc = open_out tmp in
  output_string oc "RAW-IO lib/a.ml:3:7\n";
  close_out oc;
  let r = Baseline.load tmp in
  Sys.remove tmp;
  check Alcotest.bool "justification-less line rejected" true
    (match r with Ok _ -> false | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* JSON output                                                          *)
(* ------------------------------------------------------------------ *)

let test_finding_json () =
  let f =
    {
      Finding.rule = "SHARED-ACCESS";
      severity = Finding.Error;
      file = "lib/a \"b\".ml";
      line = 3;
      col = 7;
      message = "say \"hi\"\tnow";
    }
  in
  check Alcotest.string "one object per line, escapes intact"
    "{\"rule\":\"SHARED-ACCESS\",\"severity\":\"error\",\"file\":\"lib/a \
     \\\"b\\\".ml\",\"line\":3,\"col\":7,\"message\":\"say \\\"hi\\\"\\tnow\"}"
    (Finding.to_json f)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lint"
    [
      ( "monotonic-time",
        [
          Alcotest.test_case "positive" `Quick test_monotonic_positive;
          Alcotest.test_case "negative" `Quick test_monotonic_negative;
        ] );
      ( "raw-io",
        [
          Alcotest.test_case "positive" `Quick test_raw_io_positive;
          Alcotest.test_case "negative" `Quick test_raw_io_negative;
        ] );
      ( "condition-wait-loop",
        [
          Alcotest.test_case "positive" `Quick test_condition_wait_positive;
          Alcotest.test_case "negative" `Quick test_condition_wait_negative;
        ] );
      ( "catch-all-exn",
        [
          Alcotest.test_case "positive" `Quick test_catch_all_positive;
          Alcotest.test_case "negative" `Quick test_catch_all_negative;
        ] );
      ( "blocking-under-lock",
        [
          Alcotest.test_case "positive" `Quick test_blocking_positive;
          Alcotest.test_case "negative" `Quick test_blocking_negative;
        ] );
      ( "lock-order",
        [
          Alcotest.test_case "positive" `Quick test_lock_order_positive;
          Alcotest.test_case "negative" `Quick test_lock_order_negative;
        ] );
      ( "shared-access",
        [
          Alcotest.test_case "positive" `Quick test_shared_access_positive;
          Alcotest.test_case "partial coverage" `Quick
            test_shared_access_partial_coverage;
          Alcotest.test_case "two locks, two modules" `Quick
            test_shared_access_two_locks;
          Alcotest.test_case "negative" `Quick test_shared_access_negative;
        ] );
      ( "atomic-discipline",
        [
          Alcotest.test_case "positive" `Quick test_atomic_discipline_positive;
          Alcotest.test_case "negative" `Quick test_atomic_discipline_negative;
        ] );
      ("determinism", [ QCheck_alcotest.to_alcotest order_stability_property ]);
      ( "baseline",
        [
          Alcotest.test_case "apply partitions" `Quick test_baseline_apply;
          Alcotest.test_case "column is identity" `Quick
            test_baseline_col_is_identity;
          Alcotest.test_case "old format matches any column" `Quick
            test_baseline_old_format_matches_any_col;
          Alcotest.test_case "load accepts both formats" `Quick
            test_baseline_load_formats;
          Alcotest.test_case "load rejects bare suppressions" `Quick
            test_baseline_load_rejects_bare;
        ] );
      ("json", [ Alcotest.test_case "finding to_json" `Quick test_finding_json ]);
    ]
