(* The streaming checker against the batch checker: identical verdicts
   (and witnesses of the same kinds when nothing was garbage-collected)
   on randomized histories, fed in completion order, with and without
   aggressive window GC. *)

open Histories
open Checker

let check = Alcotest.check
let bool = Alcotest.bool

let w ~id ?(proc = 0) ~v ~inv ~resp () =
  Op.write ~id ~proc:(Op.Writer proc) ~value:v ~inv ~resp

let r ~id ?(proc = 0) ~inv ~resp ~result () =
  Op.read ~id ~proc:(Op.Reader proc) ~inv ~resp ~result

(* ------------------------------------------------------------------ *)
(* Feeding a recorded history into the streaming checker                *)
(* ------------------------------------------------------------------ *)

(* Completion order: what a live sink sees.  Pending writes land last,
   like the sinks flushing in-flight operations at session end. *)
let completion_order h =
  List.sort
    (fun (a : Op.t) (b : Op.t) ->
      let key (o : Op.t) =
        ((match o.Op.resp with Some f -> f | None -> infinity), o.Op.inv, o.Op.id)
      in
      compare (key a) (key b))
    (History.ops h)

let online_verdict h =
  let t = Online.create () in
  List.iter (Online.feed t) (completion_order h);
  Online.finalize t

(* Maximal GC pressure: before each feed, raise the watermark to the
   lowest invocation among not-yet-fed operations — exactly the
   in-flight low-watermark a sink derives, at its tightest. *)
let online_verdict_gc h =
  let t = Online.create () in
  let rec go = function
    | [] -> ()
    | (o : Op.t) :: rest ->
      let wm =
        List.fold_left
          (fun acc (u : Op.t) -> Float.min acc u.Op.inv)
          o.Op.inv rest
      in
      Online.advance t ~watermark:wm;
      Online.feed t o;
      go rest
  in
  go (completion_order h);
  Online.finalize t

(* ------------------------------------------------------------------ *)
(* Witness validity                                                     *)
(* ------------------------------------------------------------------ *)

let rho_of h (rd : Op.t) =
  match rd.Op.result with
  | None -> None
  | Some v ->
    if v = History.initial_value then Some Atomicity.initial_write
    else
      List.find_opt
        (fun (o : Op.t) -> Op.written_value o = Some v)
        (History.ops h)

let obligation_edge h (u : Op.t) (v : Op.t) =
  let reads = List.filter Op.is_complete (History.reads h) in
  Op.precedes u v (* E1 *)
  || List.exists
       (fun rd -> rho_of h rd = Some v && Op.precedes u rd)
       reads (* E2 *)
  || List.exists
       (fun r1 ->
         rho_of h r1 = Some u
         && List.exists
              (fun r2 -> rho_of h r2 = Some v && Op.precedes r1 r2)
              reads)
       reads (* E3 *)
  || List.exists
       (fun rd -> rho_of h rd = Some u && Op.precedes rd v)
       reads (* E4 *)

(* After GC the online checker's cycle edges may be transitive
   shortcuts folded through retired writes, so a cycle witness is valid
   when consecutive nodes are connected by an obligation {e path}. *)
let obligation_path h (u : Op.t) (v : Op.t) =
  let writes = Atomicity.initial_write :: History.writes h in
  let visited = Hashtbl.create 16 in
  let rec go (x : Op.t) =
    x.Op.id = v.Op.id
    || (not (Hashtbl.mem visited x.Op.id))
       && begin
            Hashtbl.replace visited x.Op.id ();
            List.exists
              (fun (y : Op.t) ->
                y.Op.id <> x.Op.id && obligation_edge h x y && go y)
              writes
          end
  in
  obligation_edge h u v
  || List.exists
       (fun (y : Op.t) ->
         y.Op.id <> u.Op.id && obligation_edge h u y && go y)
       writes

let witness_valid h (wit : Witness.t) =
  let mem (o : Op.t) =
    o.Op.id = Atomicity.initial_write.Op.id || History.find h o.Op.id <> None
  in
  match wit.Witness.reason with
  | Witness.Unwritten_value { read; value } ->
    mem read
    && read.Op.result = Some value
    && not
         (List.exists
            (fun (o : Op.t) -> Op.written_value o = Some value)
            (History.ops h))
  | Witness.Future_read { read; write } ->
    mem read && mem write
    && read.Op.result = Op.written_value write
    && Op.precedes read write
  | Witness.Stale_read { read; write; newer } ->
    mem read && mem write && mem newer
    && read.Op.result = Op.written_value write
    && Op.precedes write newer && Op.precedes newer read
  | Witness.Ordering_cycle ops ->
    List.length ops >= 2
    && List.for_all mem ops
    && (let arr = Array.of_list ops in
        let n = Array.length arr in
        let ok = ref true in
        for i = 0 to n - 1 do
          if not (obligation_path h arr.(i) arr.((i + 1) mod n)) then ok := false
        done;
        !ok)
  | Witness.Property _ ->
    (* GC-boundary witnesses name violations against retired state; the
       executable cross-check is the batch verdict, asserted by the
       equivalence property itself. *)
    not (Atomicity.is_atomic h)

(* ------------------------------------------------------------------ *)
(* Randomized equivalence                                               *)
(* ------------------------------------------------------------------ *)

let history_gen =
  let open QCheck.Gen in
  let* n_writers = int_range 1 3 in
  let* n_readers = int_range 1 3 in
  let* ops_per_proc = int_range 1 3 in
  let value_pool = List.init (n_writers * ops_per_proc) (fun i -> i + 1) in
  let op_times = float_range 0.0 20.0 in
  let gen_proc_ops ~writer pidx =
    let* base_times =
      list_repeat ops_per_proc (pair op_times (float_range 0.1 5.0))
    in
    let sorted = List.sort compare (List.map fst base_times) in
    let durs = List.map snd base_times in
    let rec build acc time = function
      | [], _ | _, [] -> return (List.rev acc)
      | t :: ts, d :: ds ->
        let inv = Float.max time t in
        let resp = inv +. d in
        build ((inv, resp) :: acc) (resp +. 0.01) (ts, ds)
    in
    let* intervals = build [] 0.0 (sorted, durs) in
    let* ops =
      flatten_l
        (List.mapi
           (fun i (inv, resp) ->
             let id = (pidx * 100) + i in
             if writer then
               let v = (pidx * ops_per_proc) + i + 1 in
               let* pending = frequency [ (9, return false); (1, return true) ] in
               return
                 (w ~id ~proc:pidx ~v ~inv
                    ~resp:(if pending then None else Some resp)
                    ())
             else
               let* result =
                 frequency
                   [
                     (6, oneofl (History.initial_value :: value_pool));
                     (1, return 999);
                   ]
               in
               return
                 (r ~id ~proc:(pidx - 10) ~inv ~resp:(Some resp)
                    ~result:(Some result) ()))
           intervals)
    in
    let rec cut = function
      | [] -> []
      | (o : Op.t) :: rest -> if Op.is_complete o then o :: cut rest else [ o ]
    in
    return (cut ops)
  in
  let* writer_ops =
    flatten_l (List.init n_writers (fun i -> gen_proc_ops ~writer:true i))
  in
  let* reader_ops =
    flatten_l (List.init n_readers (fun i -> gen_proc_ops ~writer:false (i + 10)))
  in
  return (History.of_ops (List.concat (writer_ops @ reader_ops)))

let history_arb =
  QCheck.make ~print:(fun h -> Format.asprintf "%a" History.pp h) history_gen

let agree name verdict_of =
  QCheck.Test.make ~name ~count:2000 history_arb (fun h ->
      QCheck.assume (History.well_formed h = Ok ());
      QCheck.assume (History.unique_writes h);
      let batch = Atomicity.check h in
      let online = verdict_of h in
      (match (batch, online) with
      | Ok (), Ok () -> true
      | Error bw, Error ow -> witness_valid h bw && witness_valid h ow
      | Ok (), Error ow ->
        QCheck.Test.fail_reportf "online violation on atomic history:@ %a"
          Witness.pp ow
      | Error bw, Ok () ->
        QCheck.Test.fail_reportf "online missed violation:@ %a" Witness.pp bw))

let equiv_no_gc = agree "online verdict matches batch (no GC)" online_verdict

let equiv_gc =
  agree "online verdict matches batch (aggressive window GC)"
    online_verdict_gc

(* Without GC the streaming checker reproduces the batch checker's
   witness kinds, not just its verdicts. *)
let witness_kinds_no_gc =
  QCheck.Test.make ~name:"online witness kinds match batch kinds (no GC)"
    ~count:2000 history_arb (fun h ->
      QCheck.assume (History.well_formed h = Ok ());
      QCheck.assume (History.unique_writes h);
      match (Atomicity.check h, online_verdict h) with
      | Ok (), Ok () -> true
      | Error _, Error ow -> (
        match ow.Witness.reason with
        | Witness.Unwritten_value _ | Witness.Future_read _
        | Witness.Stale_read _ | Witness.Ordering_cycle _ -> true
        | Witness.Property _ ->
          QCheck.Test.fail_reportf
            "no-GC online run produced a GC-boundary witness:@ %a" Witness.pp ow)
      | Ok (), Error _ | Error _, Ok () ->
        QCheck.Test.fail_report "verdicts diverged")

(* ------------------------------------------------------------------ *)
(* Handcrafted streaming cases                                          *)
(* ------------------------------------------------------------------ *)

let test_stream_atomic () =
  let t = Online.create () in
  Online.feed t (w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ());
  Online.feed t (r ~id:1 ~inv:2.0 ~resp:(Some 3.0) ~result:(Some 1) ());
  Online.feed t (w ~id:2 ~proc:1 ~v:2 ~inv:4.0 ~resp:(Some 5.0) ());
  Online.feed t (r ~id:3 ~inv:6.0 ~resp:(Some 7.0) ~result:(Some 2) ());
  check bool "atomic" true (Online.finalize t = Ok ())

let test_stream_stale_before_gc () =
  let t = Online.create () in
  Online.feed t (w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ());
  Online.feed t (w ~id:1 ~proc:1 ~v:2 ~inv:2.0 ~resp:(Some 3.0) ());
  Online.feed t (r ~id:2 ~inv:4.0 ~resp:(Some 5.0) ~result:(Some 1) ());
  match Online.verdict t with
  | Error wit ->
    check Alcotest.string "stale" "stale-read" (Witness.short wit)
  | Ok () -> Alcotest.fail "stale read not detected"

(* The Fresh-restart shape at a GC boundary: the superseded write is
   retired, then a read returns its value — flagged on sight, as a
   GC-boundary witness. *)
let test_stream_stale_after_gc () =
  let t = Online.create () in
  Online.feed t (w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ());
  Online.feed t (w ~id:1 ~proc:1 ~v:2 ~inv:2.0 ~resp:(Some 3.0) ());
  Online.feed t (w ~id:2 ~proc:0 ~v:3 ~inv:4.0 ~resp:(Some 5.0) ());
  (* Watermark 6.0: writes 1 and 2 are settled; write 1 is superseded
     and retires (so does the virtual initial write). *)
  Online.advance t ~watermark:6.0;
  check bool "superseded writes retired" true (Online.resident t <= 2);
  Online.feed t (r ~id:3 ~inv:7.0 ~resp:(Some 8.0) ~result:(Some 1) ());
  Online.advance t ~watermark:9.0;
  match Online.verdict t with
  | Error wit ->
    check Alcotest.string "flagged at the boundary" "stale-or-unwritten-read"
      (Witness.short wit)
  | Ok () -> Alcotest.fail "stale read of a retired write not detected"

let test_stream_parked_read_resolves () =
  (* The read completes (and is fed) before its write: it parks, then
     resolves when the write lands — no false alarm. *)
  let t = Online.create () in
  Online.feed t (r ~id:0 ~inv:1.0 ~resp:(Some 2.0) ~result:(Some 7) ());
  Online.advance t ~watermark:0.5 (* the write is still in flight *);
  check bool "no verdict while parked" true (Online.verdict t = Ok ());
  Online.feed t (w ~id:1 ~v:7 ~inv:0.0 ~resp:(Some 3.0) ());
  check bool "resolved clean" true (Online.finalize t = Ok ())

let test_stream_future_read_via_park () =
  let t = Online.create () in
  Online.feed t (r ~id:0 ~inv:0.0 ~resp:(Some 1.0) ~result:(Some 7) ());
  Online.feed t (w ~id:1 ~v:7 ~inv:2.0 ~resp:(Some 3.0) ());
  match Online.finalize t with
  | Error wit -> check Alcotest.string "future" "future-read" (Witness.short wit)
  | Ok () -> Alcotest.fail "future read not detected"

let test_stream_unwritten_at_finalize () =
  let t = Online.create () in
  Online.feed t (r ~id:0 ~inv:0.0 ~resp:(Some 1.0) ~result:(Some 99) ());
  match Online.finalize t with
  | Error wit ->
    check Alcotest.string "unwritten" "unwritten-value" (Witness.short wit)
  | Ok () -> Alcotest.fail "unwritten value not detected"

let test_window_stays_bounded () =
  (* A long sequential run: the window must stay O(1) while the ops
     count grows without bound. *)
  let t = Online.create () in
  let n = 20_000 in
  for i = 0 to n - 1 do
    let inv = float_of_int (4 * i) in
    Online.advance t ~watermark:inv;
    Online.feed t (w ~id:(2 * i) ~v:(i + 1) ~inv ~resp:(Some (inv +. 1.0)) ());
    Online.feed t
      (r ~id:((2 * i) + 1) ~inv:(inv +. 2.0) ~resp:(Some (inv +. 3.0))
         ~result:(Some (i + 1)) ())
  done;
  check bool "atomic" true (Online.finalize t = Ok ());
  check bool "saw everything" true (Online.ops_seen t = 2 * n);
  check bool
    (Printf.sprintf "peak window %d stays small" (Online.peak_resident t))
    true
    (Online.peak_resident t < 32)

let test_keyed_isolated_verdicts () =
  let fired = ref [] in
  let t =
    Online.Keyed.create ~on_violation:(fun key _ -> fired := key :: !fired) ()
  in
  Online.Keyed.feed t ~key:"a" (w ~id:0 ~v:1 ~inv:0.0 ~resp:(Some 1.0) ());
  Online.Keyed.feed t ~key:"b" (w ~id:1 ~v:2 ~inv:0.0 ~resp:(Some 1.0) ());
  Online.Keyed.feed t ~key:"a"
    (r ~id:2 ~inv:2.0 ~resp:(Some 3.0) ~result:(Some 1) ());
  (* Key b alone reads a never-written value. *)
  Online.Keyed.feed t ~key:"b"
    (r ~id:3 ~inv:2.0 ~resp:(Some 3.0) ~result:(Some 42) ());
  let verdicts = Online.Keyed.finalize t in
  check bool "a atomic" true (List.assoc "a" verdicts = Ok ());
  check bool "b flagged" true (List.assoc "b" verdicts <> Ok ());
  check (Alcotest.list Alcotest.string) "violation hook fired for b" [ "b" ]
    !fired;
  check bool "two keys" true (Online.Keyed.keys t = 2)

(* The recorder's completion hook is the simulator-plane wiring point:
   every finished operation streams straight into the checker. *)
let test_recorder_hook_feeds_online () =
  let t = Online.create () in
  let rec_ = Recorder.create ~on_complete:(Online.feed t) () in
  let proc = Op.Writer 0 in
  let h1 = Recorder.begin_write rec_ ~proc ~value:1 ~now:0.0 in
  Recorder.finish_write rec_ h1 ~now:1.0;
  let rproc = Op.Reader 0 in
  let h2 = Recorder.begin_read rec_ ~proc:rproc ~now:2.0 in
  Recorder.finish_read rec_ h2 ~now:3.0 ~result:1;
  check bool "hook fed both ops" true (Online.ops_seen t = 2);
  check bool "atomic" true (Online.finalize t = Ok ());
  (* And the recorded history agrees. *)
  check bool "batch agrees" true (Atomicity.is_atomic (Recorder.snapshot rec_))

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest
      [ equiv_no_gc; equiv_gc; witness_kinds_no_gc ]
  in
  Alcotest.run "online"
    [
      ( "stream",
        [
          Alcotest.test_case "atomic stream" `Quick test_stream_atomic;
          Alcotest.test_case "stale read (window)" `Quick
            test_stream_stale_before_gc;
          Alcotest.test_case "stale read (GC boundary)" `Quick
            test_stream_stale_after_gc;
          Alcotest.test_case "parked read resolves" `Quick
            test_stream_parked_read_resolves;
          Alcotest.test_case "future read via park" `Quick
            test_stream_future_read_via_park;
          Alcotest.test_case "unwritten at finalize" `Quick
            test_stream_unwritten_at_finalize;
          Alcotest.test_case "window bounded" `Quick test_window_stays_bounded;
          Alcotest.test_case "keyed verdicts" `Quick
            test_keyed_isolated_verdicts;
          Alcotest.test_case "recorder hook" `Quick
            test_recorder_hook_feeds_online;
        ] );
      ("equivalence", qsuite);
    ]
