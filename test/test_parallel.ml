(* Tests for the work-sharing domain pool and for the determinism of
   everything threaded through it: Pool.map against List.map, Table-1
   shaped sweeps sequential vs parallel, hunter and exhaustive-sweep
   parity, exception propagation, and a qcheck property that the
   sorted-suffix saturate optimisation in Checker.Atomicity leaves
   verdicts and obligation edges unchanged against an all-pairs
   reference implementation. *)

open Workload
module Pool = Parallel.Pool
module Op = Histories.Op
module History = Histories.History

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Pool primitives                                                      *)
(* ------------------------------------------------------------------ *)

let test_map_matches_list_map () =
  let xs = List.init 100 (fun i -> i - 50) in
  let f x = (x * x) - (3 * x) in
  let expected = List.map f xs in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      check (Alcotest.list int)
        (Printf.sprintf "map on %d domains" domains)
        expected (Pool.map pool f xs))
    [ 1; 4 ];
  check (Alcotest.list int) "empty" [] (Pool.map (Pool.create ~domains:4 ()) succ []);
  check (Alcotest.list int) "singleton" [ 8 ] (Pool.map (Pool.create ~domains:4 ()) succ [ 7 ])

let test_map_reduce_ordered () =
  (* String concatenation is non-commutative: any completion-order
     reduction would scramble it. *)
  let xs = List.init 60 string_of_int in
  let expected = String.concat "," xs in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      let got =
        Pool.map_reduce pool
          ~map:(fun s -> s)
          ~reduce:(fun acc s -> if acc = "" then s else acc ^ "," ^ s)
          ~init:"" xs
      in
      check Alcotest.string
        (Printf.sprintf "ordered reduce on %d domains" domains)
        expected got)
    [ 1; 4 ]

let test_iter_seeds_covers_range () =
  let lo = 3 and hi = 77 in
  let seen = Array.make (hi + 1) 0 in
  let pool = Pool.create ~domains:4 () in
  (* Each seed touches only its own slot, so tasks are state-disjoint. *)
  Pool.iter_seeds pool ~chunk:5 ~lo ~hi (fun seed -> seen.(seed) <- seen.(seed) + 1);
  for seed = lo to hi do
    check int (Printf.sprintf "seed %d once" seed) 1 seen.(seed)
  done;
  for seed = 0 to lo - 1 do
    check int (Printf.sprintf "seed %d untouched" seed) 0 seen.(seed)
  done

let test_exception_reraised () =
  let pool = Pool.create ~domains:4 () in
  Alcotest.check_raises "task failure reaches the caller"
    (Failure "task 5 exploded") (fun () ->
      ignore
        (Pool.map pool
           (fun i -> if i = 5 then failwith "task 5 exploded" else i)
           (List.init 40 (fun i -> i))));
  (* The pool is stateless: the same pool value works after a failure. *)
  check (Alcotest.list int) "pool survives" [ 2; 3 ]
    (Pool.map pool succ [ 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Table-1-shaped sweeps: parallel counts equal sequential counts       *)
(* ------------------------------------------------------------------ *)

let sweep_counts ~register ~pool =
  let tasks =
    List.concat_map
      (fun shape -> List.init 10 (fun i -> (shape, i + 1)))
      [ Hunter.Benign; Hunter.Skips; Hunter.Crash ]
  in
  let verdicts =
    match pool with
    | None ->
      List.map
        (fun (shape, seed) ->
          Hunter.run_shape ~register ~s:5 ~t:1 ~w:2 ~r:2 ~seed shape)
        tasks
    | Some pool ->
      Pool.map pool
        (fun (shape, seed) ->
          Hunter.run_shape ~register ~s:5 ~t:1 ~w:2 ~r:2 ~seed shape)
        tasks
  in
  List.fold_left
    (fun (atomic, violated) -> function
      | None, _ -> (atomic + 1, violated)
      | Some _, _ -> (atomic, violated + 1))
    (0, 0) verdicts

let test_sweep_counts_match () =
  List.iter
    (fun register ->
      let seq = sweep_counts ~register ~pool:None in
      let par = sweep_counts ~register ~pool:(Some (Pool.create ~domains:4 ())) in
      check (Alcotest.pair int int)
        (Registers.Registry.name register)
        seq par)
    [ Registers.Registry.fastread_w2r1; Registers.Registry.naive_w1r2 ]

let test_hunt_parity () =
  let pool = Pool.create ~domains:4 () in
  let register = Registers.Registry.naive_w1r2 in
  let seq, seq_runs = Hunter.hunt ~seeds_per_shape:10 ~register ~s:5 ~t:1 ~w:2 ~r:2 () in
  let par, par_runs =
    Hunter.hunt ~seeds_per_shape:10 ~pool ~register ~s:5 ~t:1 ~w:2 ~r:2 ()
  in
  check int "runs" seq_runs par_runs;
  match (seq, par) with
  | None, None -> ()
  | Some a, Some b ->
    check bool "same shape" true (a.Hunter.shape = b.Hunter.shape);
    check int "same seed" a.Hunter.seed b.Hunter.seed;
    check int "same runs_tried" a.Hunter.runs_tried b.Hunter.runs_tried;
    check bool "same mwa" true (a.Hunter.mwa_failure = b.Hunter.mwa_failure)
  | _ -> Alcotest.fail "sequential and parallel hunts disagree on finding"

let test_exhaustive_parity () =
  (* max_runs below the full sweep exercises the truncation slicing. *)
  List.iter
    (fun max_runs ->
      let run pool =
        Exhaustive.explore ~max_runs ~pool
          ~register:Registers.Registry.naive_w1r2 ~s:3 ~w:2 ~r:1 ()
      in
      let seq = run (Pool.create ~domains:1 ()) in
      let par = run (Pool.create ~domains:4 ()) in
      check int "runs" seq.Exhaustive.runs par.Exhaustive.runs;
      check bool "exhaustive flag" seq.Exhaustive.exhaustive par.Exhaustive.exhaustive;
      check int "violations" seq.Exhaustive.violations par.Exhaustive.violations;
      match (seq.Exhaustive.first, par.Exhaustive.first) with
      | None, None -> ()
      | Some a, Some b ->
        check (Alcotest.list int) "first order" a.Exhaustive.order b.Exhaustive.order;
        check
          (Alcotest.list (Alcotest.pair int int))
          "first skips" a.Exhaustive.skips b.Exhaustive.skips
      | _ -> Alcotest.fail "sequential and parallel sweeps disagree on first")
    [ 3_000; 100_000 ]

(* ------------------------------------------------------------------ *)
(* The saturate optimisation: qcheck against an all-pairs reference     *)
(* ------------------------------------------------------------------ *)

(* Random well-formed histories: per-process sequential intervals with
   overlapping lifetimes across processes, unique written values, reads
   returning either a written value or the initial value, occasionally a
   pending last operation. *)
let build_history seed =
  let rng = Random.State.make [| seed |] in
  let frand lo hi = lo +. Random.State.float rng (hi -. lo) in
  let id = ref 0 in
  let value = ref 100 in
  let ops = ref [] in
  let written = ref [ History.initial_value ] in
  let nw = 1 + Random.State.int rng 3 in
  for wi = 0 to nw - 1 do
    let count = 1 + Random.State.int rng 3 in
    let now = ref (frand 0.0 10.0) in
    for k = 0 to count - 1 do
      let inv = !now in
      let dur = frand 0.5 8.0 in
      let pending = k = count - 1 && Random.State.int rng 10 = 0 in
      let resp = if pending then None else Some (inv +. dur) in
      incr id;
      incr value;
      written := !value :: !written;
      ops := Op.write ~id:!id ~proc:(Op.Writer wi) ~value:!value ~inv ~resp :: !ops;
      now := inv +. dur +. frand 0.1 4.0
    done
  done;
  let values = Array.of_list !written in
  let nr = 1 + Random.State.int rng 3 in
  for ri = 0 to nr - 1 do
    let count = 1 + Random.State.int rng 4 in
    let now = ref (frand 0.0 10.0) in
    for k = 0 to count - 1 do
      let inv = !now in
      let dur = frand 0.5 8.0 in
      let pending = k = count - 1 && Random.State.int rng 10 = 0 in
      let resp = if pending then None else Some (inv +. dur) in
      let result =
        Some values.(Random.State.int rng (Array.length values))
      in
      incr id;
      ops := Op.read ~id:!id ~proc:(Op.Reader ri) ~inv ~resp ~result :: !ops;
      now := inv +. dur +. frand 0.1 4.0
    done
  done;
  History.of_ops !ops

(* Reference implementation: the pre-optimisation checker with all-pairs
   [Op.precedes] scans building the same obligation graph. *)
let reference ~edges_only h =
  let initial =
    Op.write ~id:(-1) ~proc:(Op.Writer (-1)) ~value:History.initial_value
      ~inv:neg_infinity ~resp:(Some neg_infinity)
  in
  let h = History.strip_pending_reads h in
  let writes = Array.of_list (initial :: History.writes h) in
  let n = Array.length writes in
  let value_index = Hashtbl.create n in
  Array.iteri
    (fun i w ->
      match Op.written_value w with
      | Some v -> Hashtbl.replace value_index v i
      | None -> ())
    writes;
  let reads_or_err =
    List.fold_left
      (fun acc (r : Op.t) ->
        match acc with
        | None -> None
        | Some rs -> (
          match r.Op.result with
          | None -> Some rs
          | Some v -> (
            match Hashtbl.find_opt value_index v with
            | None -> None (* unwritten value *)
            | Some wi -> Some ((r, wi) :: rs))))
      (Some []) (History.reads h)
  in
  match reads_or_err with
  | None -> if edges_only then Some [] else None
  | Some reads ->
    let reads = Array.of_list (List.rev reads) in
    let adj = Array.make_matrix n n false in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && Op.precedes writes.(i) writes.(j) then adj.(i).(j) <- true
      done
    done;
    Array.iter
      (fun (r, wi) ->
        for j = 0 to n - 1 do
          if j <> wi then begin
            if Op.precedes writes.(j) r then adj.(j).(wi) <- true;
            if Op.precedes r writes.(j) then adj.(wi).(j) <- true
          end
        done)
      reads;
    let nr = Array.length reads in
    for a = 0 to nr - 1 do
      for b = 0 to nr - 1 do
        if a <> b then begin
          let r1, w1 = reads.(a) and r2, w2 = reads.(b) in
          if w1 <> w2 && Op.precedes r1 r2 then adj.(w1).(w2) <- true
        end
      done
    done;
    if edges_only then begin
      let acc = ref [] in
      for i = n - 1 downto 1 do
        for j = n - 1 downto 1 do
          if adj.(i).(j) then
            acc := (writes.(i).Op.id, writes.(j).Op.id) :: !acc
        done
      done;
      Some !acc
    end
    else begin
      (* local conditions, as in the checker *)
      let locally_bad = ref false in
      Array.iter
        (fun (r, wi) ->
          if Op.precedes r writes.(wi) then locally_bad := true;
          for j = 0 to n - 1 do
            if
              j <> wi
              && Op.precedes writes.(wi) writes.(j)
              && Op.precedes writes.(j) r
            then locally_bad := true
          done)
        reads;
      if !locally_bad then None
      else begin
        (* cycle detection *)
        let color = Array.make n 0 in
        let cyclic = ref false in
        let rec visit u =
          color.(u) <- 1;
          for v = 0 to n - 1 do
            if adj.(u).(v) then
              if color.(v) = 1 then cyclic := true
              else if color.(v) = 0 then visit v
          done;
          color.(u) <- 2
        in
        for u = 0 to n - 1 do
          if color.(u) = 0 then visit u
        done;
        if !cyclic then None else Some []
      end
    end

let reference_is_atomic h = reference ~edges_only:false h <> None

let reference_edges h =
  match reference ~edges_only:true h with Some e -> e | None -> []

let saturate_property =
  QCheck.Test.make ~count:300 ~name:"saturate optimisation preserves verdicts"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let h = build_history seed in
      QCheck.assume (History.well_formed h = Ok ());
      let fast = Checker.Atomicity.is_atomic h in
      let slow = reference_is_atomic h in
      let fast_edges =
        Checker.Atomicity.obligation_edges h
        |> List.map (fun ((a : Op.t), (b : Op.t)) -> (a.Op.id, b.Op.id))
        |> List.sort compare
      in
      let slow_edges = List.sort compare (reference_edges h) in
      fast = slow && fast_edges = slow_edges)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches List.map" `Quick test_map_matches_list_map;
          Alcotest.test_case "map_reduce is ordered" `Quick test_map_reduce_ordered;
          Alcotest.test_case "iter_seeds covers range" `Quick test_iter_seeds_covers_range;
          Alcotest.test_case "exceptions re-raised" `Quick test_exception_reraised;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "sweep counts match" `Slow test_sweep_counts_match;
          Alcotest.test_case "hunt parity" `Slow test_hunt_parity;
          Alcotest.test_case "exhaustive parity" `Slow test_exhaustive_parity;
        ] );
      ( "checker",
        [ QCheck_alcotest.to_alcotest saturate_property ] );
    ]
