(* Tests for the live TCP transport: the wire codec (round-trip and
   strictness), stream reassembly under adversarial chunking, a real
   loopback server, and full live cluster runs — including surviving [t]
   genuine server kills mid-run with the history still atomic. *)

open Registers
open Transport

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let tag ts wid = { Tstamp.ts; wid }
let value ts wid payload = { Wire.tag = tag ts wid; payload }

(* ------------------------------------------------------------------ *)
(* Codec: deterministic round trips                                     *)
(* ------------------------------------------------------------------ *)

let sample_frames =
  [
    Codec.Request { rt = 0; client = 0; req = Wire.Query [] };
    Codec.Request
      { rt = 1; client = 7; req = Wire.Query [ Wire.initial_value_entry ] };
    Codec.Request
      {
        rt = max_int;
        client = 3;
        req = Wire.Update (value max_int 11 min_int);
      };
    Codec.Reply
      {
        rt = 42;
        client = 8;
        server = 4;
        rep = Wire.Write_ack { current = value 5 1 500 };
      };
    Codec.Reply
      {
        rt = 9;
        client = 12;
        server = 0;
        rep =
          Wire.Read_ack
            {
              current = value 3 2 303;
              vector =
                [
                  (Wire.initial_value_entry, [ 10; 11; 12 ]);
                  (value 1 0 101, []);
                  (value 3 2 303, [ 13 ]);
                ];
            };
      };
  ]

let test_codec_roundtrip_samples () =
  List.iter
    (fun f ->
      check bool "decode (encode f) = f" true (Codec.decode (Codec.encode f) = f);
      check bool "body round trip" true
        (Codec.decode_body (Codec.encode_body f) = f))
    sample_frames

let test_codec_large_vector () =
  (* A READACK carrying a big value vector with fat updated sets — the
     frame the codec must not choke on. *)
  let vector =
    List.init 5_000 (fun i ->
        (value i (i mod 5) (i * 17), List.init (i mod 20) (fun j -> j + 100)))
  in
  let f =
    Codec.Reply
      {
        rt = 1;
        client = 6;
        server = 2;
        rep = Wire.Read_ack { current = value 5_000 0 1; vector };
      }
  in
  let s = Codec.encode f in
  check bool "large frame survives" true (Codec.decode s = f);
  let q =
    Codec.Request
      { rt = 2; client = 9; req = Wire.Query (List.map fst vector) }
  in
  check bool "large query survives" true (Codec.decode (Codec.encode q) = q)

(* ------------------------------------------------------------------ *)
(* Codec: strictness                                                    *)
(* ------------------------------------------------------------------ *)

let rejects s =
  match Codec.decode s with
  | _ -> false
  | exception Codec.Decode_error _ -> true

let test_codec_rejects_truncation () =
  let full = Codec.encode (List.nth sample_frames 4) in
  for cut = 0 to String.length full - 1 do
    if not (rejects (String.sub full 0 cut)) then
      Alcotest.failf "truncation to %d bytes accepted" cut
  done

let test_codec_rejects_garbage () =
  let full = Codec.encode (List.hd sample_frames) in
  check bool "trailing byte" true (rejects (full ^ "\x00"));
  check bool "bad tag" true
    (rejects
       (let b = Bytes.of_string full in
        Bytes.set b 4 '\xff';
        Bytes.to_string b));
  check bool "absurd length prefix" true
    (rejects ("\xff\xff\xff\xff" ^ String.make 8 'x'));
  check bool "negative list length" true
    (* Request/Query with length -1. *)
    (rejects (Codec.encode (Codec.Request { rt = 0; client = 0; req = Wire.Query [] })
              |> fun s ->
              let b = Bytes.of_string s in
              Bytes.fill b (String.length s - 8) 8 '\xff';
              Bytes.to_string b))

(* ------------------------------------------------------------------ *)
(* Codec: qcheck round trip                                             *)
(* ------------------------------------------------------------------ *)

let frame_gen =
  let open QCheck.Gen in
  let any_int =
    frequency
      [ (4, small_signed_int); (2, int); (1, return max_int); (1, return min_int) ]
  in
  let tag_gen =
    let* ts = frequency [ (4, small_nat); (1, int) ] in
    let* wid = int_range (-1) 10 in
    return { Tstamp.ts; wid }
  in
  let value_gen =
    let* tag = tag_gen in
    let* payload = any_int in
    return { Wire.tag; payload }
  in
  let req_gen =
    frequency
      [
        (2, map (fun vs -> Wire.Query vs) (list_size (int_bound 12) value_gen));
        (2, map (fun v -> Wire.Update v) value_gen);
      ]
  in
  let rep_gen =
    frequency
      [
        (1, map (fun v -> Wire.Write_ack { current = v }) value_gen);
        ( 2,
          let* current = value_gen in
          let* vector =
            list_size (int_bound 12)
              (pair value_gen (list_size (int_bound 6) small_nat))
          in
          return (Wire.Read_ack { current; vector }) );
      ]
  in
  let* rt = small_nat and* peer = int_bound 1000 in
  let key_gen =
    map (fun s -> "k/" ^ s) (string_size ~gen:printable (int_bound 40))
  in
  frequency
    [
      (1, map (fun req -> Codec.Request { rt; client = peer; req }) req_gen);
      ( 1,
        let* client = int_bound 1000 in
        map (fun rep -> Codec.Reply { rt; client; server = peer; rep }) rep_gen
      );
      ( 1,
        let* key = key_gen in
        map
          (fun req -> Codec.Keyed_request { key; rt; client = peer; req })
          req_gen );
      ( 1,
        let* client = int_bound 1000 and* key = key_gen in
        map
          (fun rep ->
            Codec.Keyed_reply { key; rt; client; server = peer; rep })
          rep_gen );
    ]

let frame_print f =
  match f with
  | Codec.Request { rt; client; req } ->
    Format.asprintf "req rt=%d client=%d %a" rt client Wire.pp_req req
  | Codec.Reply { rt; client; server; rep } ->
    Format.asprintf "rep rt=%d client=%d server=%d %a" rt client server
      Wire.pp_rep rep
  | Codec.Keyed_request { key; rt; client; req } ->
    Format.asprintf "kreq key=%S rt=%d client=%d %a" key rt client Wire.pp_req
      req
  | Codec.Keyed_reply { key; rt; client; server; rep } ->
    Format.asprintf "krep key=%S rt=%d client=%d server=%d %a" key rt client
      server Wire.pp_rep rep

let codec_roundtrip_prop =
  QCheck.Test.make
    ~name:"codec round trip: decode (encode f) = f"
    ~count:500
    (QCheck.make ~print:frame_print frame_gen)
    (fun f -> Codec.decode (Codec.encode f) = f)

let codec_prefix_prop =
  QCheck.Test.make
    ~name:"codec rejects every strict prefix"
    ~count:100
    (QCheck.make ~print:frame_print frame_gen)
    (fun f ->
      let s = Codec.encode f in
      let cut = String.length s / 2 in
      rejects (String.sub s 0 cut))

let codec_encode_into_prop =
  (* The zero-allocation fast path must be byte-identical to [encode],
     the buffer must be cleared of stale content, and the sizing pass
     must predict the exact frame length. *)
  let b = Buffer.create 16 in
  QCheck.Test.make
    ~name:"encode_into = encode, frame_size exact, buffer reusable"
    ~count:500
    (QCheck.make ~print:frame_print frame_gen)
    (fun f ->
      Buffer.add_string b "stale bytes from the previous frame";
      Codec.encode_into b f;
      let s = Buffer.contents b in
      s = Codec.encode f && String.length s = Codec.frame_size f)

(* ------------------------------------------------------------------ *)
(* Stream reassembly                                                    *)
(* ------------------------------------------------------------------ *)

let test_stream_byte_at_a_time () =
  let frames = sample_frames in
  let wire = String.concat "" (List.map Codec.encode frames) in
  let st = Codec.Stream.create () in
  let out = ref [] in
  String.iter
    (fun ch ->
      Codec.Stream.feed st (Bytes.make 1 ch) 1;
      let rec drain () =
        match Codec.Stream.next st with
        | Some f ->
          out := f :: !out;
          drain ()
        | None -> ()
      in
      drain ())
    wire;
  check bool "all frames recovered in order" true (List.rev !out = frames);
  check bool "no residue" true (Codec.Stream.next st = None)

let test_stream_mixed_chunks () =
  let frames = List.concat [ sample_frames; sample_frames; sample_frames ] in
  let wire = String.concat "" (List.map Codec.encode frames) in
  let st = Codec.Stream.create () in
  let out = ref [] in
  let pos = ref 0 in
  let sizes = [ 1; 3; 7; 64; 2; 1024; 5 ] in
  let i = ref 0 in
  while !pos < String.length wire do
    let n = min (List.nth sizes (!i mod List.length sizes)) (String.length wire - !pos) in
    incr i;
    Codec.Stream.feed st (Bytes.of_string (String.sub wire !pos n)) n;
    pos := !pos + n;
    let rec drain () =
      match Codec.Stream.next st with
      | Some f ->
        out := f :: !out;
        drain ()
      | None -> ()
    in
    drain ()
  done;
  check int "frame count" (List.length frames) (List.length !out);
  check bool "order preserved" true (List.rev !out = frames)

(* ------------------------------------------------------------------ *)
(* A real loopback server                                               *)
(* ------------------------------------------------------------------ *)

let test_server_roundtrip () =
  let replica = Replica.create () in
  let server = Server.start ~id:0 ~replica () in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server) in
  let ep = Endpoint.create ~client:10 ~servers:[| addr |] ~quorum:1 () in
  let got = ref None in
  Endpoint.exec ep (Wire.Update (value 1 0 101)) (fun replies ->
      got := Some replies);
  (* Asserting one exact reply shape; every other wire message is a
     test failure, so the wildcard is deliberate. *)
  (match[@warning "-4"] !got with
  | Some [ (0, Wire.Write_ack { current }) ] ->
    check bool "server adopted the value" true
      (Tstamp.equal current.Wire.tag (tag 1 0))
  | Some _ | None -> Alcotest.fail "expected one write ack from server 0");
  let got = ref None in
  Endpoint.exec ep (Wire.Query []) (fun replies -> got := Some replies);
  (match[@warning "-4"] !got with
  | Some [ (0, Wire.Read_ack { current; vector }) ] ->
    check bool "query sees the update" true
      (Tstamp.equal current.Wire.tag (tag 1 0));
    check bool "vector records the writer" true
      (List.exists
         (fun (v, upd) ->
           Tstamp.equal v.Wire.tag (tag 1 0) && List.mem 10 upd)
         vector)
  | Some _ | None -> Alcotest.fail "expected one read ack from server 0");
  check int "two rounds completed" 2 (Endpoint.rounds_completed ep);
  Endpoint.close ep;
  Server.stop server

let test_server_survives_garbage () =
  (* A peer speaking garbage gets disconnected; the server keeps serving
     well-formed clients. *)
  let replica = Replica.create () in
  let server = Server.start ~id:0 ~replica () in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server) in
  let bad = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect bad addr;
  let junk = Bytes.of_string "\xff\xff\xff\xffnonsense" in
  Netio.write_all bad junk 0 (Bytes.length junk);
  let ep = Endpoint.create ~client:11 ~servers:[| addr |] ~quorum:1 () in
  let ok = ref false in
  Endpoint.exec ep (Wire.Update (value 2 1 202)) (fun _ -> ok := true);
  check bool "good client still served" true !ok;
  (try Unix.close bad with Unix.Unix_error _ -> ());
  Endpoint.close ep;
  Server.stop server

let test_server_reaps_handlers () =
  (* Connect/disconnect churn must not leak connection state: the
     reactor closes a connection the moment its socket reports EOF, so
     once every client is gone the live connection count returns to
     zero (no reaper tick to wait out — only the event-loop wakeup). *)
  let replica = Replica.create () in
  let server = Server.start ~id:0 ~replica () in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server) in
  for round = 1 to 10 do
    let ep = Endpoint.create ~client:round ~servers:[| addr |] ~quorum:1 () in
    let ok = ref false in
    Endpoint.exec ep (Wire.Update (value round 0 (round * 3))) (fun _ ->
        ok := true);
    check bool "op served" true !ok;
    Endpoint.close ep
  done;
  let deadline = Clock.now () +. 5.0 in
  while Server.connection_count server > 0 && Clock.now () < deadline do
    Thread.delay 0.05
  done;
  check int "all connections closed" 0 (Server.connection_count server);
  Server.stop server

(* ------------------------------------------------------------------ *)
(* The reactor data path                                                *)
(* ------------------------------------------------------------------ *)

(* Raw-socket helpers for talking straight wire to a server, bypassing
   the client planes: the reactor's framing and fairness claims are
   about byte streams, so the tests speak bytes. *)
let raw_connect addr =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  fd

let raw_send fd s =
  let b = Bytes.of_string s in
  Netio.write_all fd b 0 (Bytes.length b)

let query_frame ~rt ~client =
  Codec.encode (Codec.Request { rt; client; req = Wire.Query [] })

(* Read complete frames off [fd] into [st] until [want] have arrived. *)
let raw_read_frames fd st buf want =
  let got = ref [] and n_got = ref 0 in
  while !n_got < want do
    let n = Netio.read fd buf 0 (Bytes.length buf) in
    if n = 0 then failwith "server closed a healthy connection";
    Codec.Stream.feed st buf n;
    let rec drain () =
      match Codec.Stream.next st with
      | Some f ->
        got := f :: !got;
        incr n_got;
        drain ()
      | None -> ()
    in
    drain ()
  done;
  List.rev !got

let test_reactor_interleaved_partial_frames () =
  (* Many connections, each receiving its frames one byte at a time,
     interleaved round-robin: at every instant the reactor holds
     [nconns] partial frames in per-connection streams.  Every frame
     must still be answered, in order, to the connection that sent it. *)
  let replica = Replica.create () in
  let server = Server.start ~id:0 ~replica () in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server) in
  let nconns = 8 and per = 5 in
  let conns = Array.init nconns (fun _ -> raw_connect addr) in
  let wires =
    Array.init nconns (fun i ->
        String.concat ""
          (List.init per (fun rt -> query_frame ~rt ~client:(100 + i))))
  in
  let maxlen = Array.fold_left (fun m w -> max m (String.length w)) 0 wires in
  let byte = Bytes.create 1 in
  for pos = 0 to maxlen - 1 do
    Array.iteri
      (fun i fd ->
        if pos < String.length wires.(i) then begin
          Bytes.set byte 0 wires.(i).[pos];
          Netio.write_all fd byte 0 1
        end)
      conns
  done;
  let buf = Bytes.create 8192 in
  Array.iteri
    (fun i fd ->
      let frames = raw_read_frames fd (Codec.Stream.create ()) buf per in
      List.iteri
        (fun k f ->
          match[@warning "-4"] f with
          | Codec.Reply { rt; client; server = sid; rep = Wire.Read_ack _ } ->
            check int "replies in request order" k rt;
            check int "client echoed" (100 + i) client;
            check int "server id echoed" 0 sid
          | _ -> Alcotest.fail "expected a read ack")
        frames)
    conns;
  Array.iter Unix.close conns;
  Server.stop server

let test_reactor_backpressure_slow_reader () =
  (* A peer that stops reading must cost the reactor a write-interest
     registration, not a blocked thread: while client A sits on
     thousands of unread replies (tiny SO_RCVBUF, nothing drained), a
     concurrent client B's operations keep completing.  Afterwards A
     reads everything it was owed, in order — buffered server-side under
     backpressure, not dropped. *)
  let replica = Replica.create () in
  let server = Server.start ~id:0 ~replica () in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server) in
  (* Fatten the replies first: every distinct written tag adds a vector
     entry to each subsequent Read_ack, so the pipelined queries below
     overflow any kernel buffer pair and force EAGAIN on the server. *)
  let seed_ep = Endpoint.create ~client:50 ~servers:[| addr |] ~quorum:1 () in
  for w = 1 to 100 do
    let ok = ref false in
    Endpoint.exec seed_ep (Wire.Update (value w (w mod 8) (1000 + w)))
      (fun _ -> ok := true);
    check bool "seed write served" true !ok
  done;
  Endpoint.close seed_ep;
  let a = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt_int a Unix.SO_RCVBUF 4096;
  Unix.connect a addr;
  let nq = 2000 in
  let reqs = Buffer.create (nq * 24) in
  for rt = 0 to nq - 1 do
    Buffer.add_string reqs (query_frame ~rt ~client:60)
  done;
  raw_send a (Buffer.contents reqs);
  (* A is now owed ~nq fat replies it is not reading.  B must not care. *)
  let b_ep = Endpoint.create ~client:61 ~servers:[| addr |] ~quorum:1 () in
  let t0 = Clock.now () in
  for _ = 1 to 20 do
    let ok = ref false in
    Endpoint.exec b_ep (Wire.Query []) (fun _ -> ok := true);
    check bool "B's op completed" true !ok
  done;
  let b_elapsed = Clock.now () -. t0 in
  Endpoint.close b_ep;
  check bool "B not stalled behind the slow reader" true (b_elapsed < 5.0);
  (* Now drain A: every reply arrives, in request order. *)
  let st = Codec.Stream.create () in
  let buf = Bytes.create 65536 in
  let got = ref 0 in
  while !got < nq do
    let n = Netio.read a buf 0 (Bytes.length buf) in
    if n = 0 then Alcotest.fail "server severed the slow reader";
    Codec.Stream.feed st buf n;
    let rec drain () =
      match Codec.Stream.next st with
      | Some (Codec.Reply { rt; client = _; server = _; rep = _ }) ->
        check int "A's replies in order" !got rt;
        incr got;
        drain ()
      | Some (Codec.Request _ | Codec.Keyed_request _ | Codec.Keyed_reply _)
        ->
        Alcotest.fail "server sent an unexpected frame"
      | None -> ()
    in
    drain ()
  done;
  Unix.close a;
  Server.stop server

let test_reactor_connection_churn () =
  (* 256 concurrent short-lived connections — the regime that used to
     cost a thread spawn + join each.  Every connection gets its reply,
     and the connection count returns to zero afterwards. *)
  let replica = Replica.create () in
  let server = Server.start ~id:0 ~replica () in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server) in
  let n = 256 in
  let failures = Array.make n None in
  let body i () =
    match
      let fd = raw_connect addr in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          raw_send fd (query_frame ~rt:0 ~client:(300 + i));
          let buf = Bytes.create 8192 in
          match[@warning "-4"]
            raw_read_frames fd (Codec.Stream.create ()) buf 1
          with
          | [ Codec.Reply { rt = 0; client; server = 0; rep = _ } ]
            when client = 300 + i ->
            ()
          | _ -> failwith "unexpected reply")
    with
    | () -> ()
    | exception Unix.Unix_error (e, fn, _) ->
      failures.(i) <- Some (fn ^ ": " ^ Unix.error_message e)
    | exception Failure msg -> failures.(i) <- Some msg
    | exception Codec.Decode_error msg -> failures.(i) <- Some msg
  in
  let threads = List.init n (fun i -> Thread.create (body i) ()) in
  List.iter Thread.join threads;
  Array.iteri
    (fun i f ->
      match f with
      | Some msg -> Alcotest.failf "connection %d: %s" i msg
      | None -> ())
    failures;
  let deadline = Clock.now () +. 5.0 in
  while Server.connection_count server > 0 && Clock.now () < deadline do
    Thread.delay 0.02
  done;
  check int "every connection closed" 0 (Server.connection_count server);
  Server.stop server

let test_reactor_sharded_live () =
  (* shards > 1: connections dealt round-robin across per-domain event
     loops, kill + recover-restart mid-run, history still atomic. *)
  let cluster = Cluster.start ~shards:2 ~s:3 ~tol:1 () in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown cluster)
    (fun () ->
      let res =
        Session.run ~kill_at:[ (0.05, 2) ]
          ~restart_at:[ (0.3, 2, `Recover) ]
          ~rt_timeout:0.5 ~register:Registry.abd_mwmr ~cluster
          {
            Session.default_spec with
            writers = 2;
            readers = 2;
            writes_per_writer = 8;
            reads_per_reader = 12;
          }
      in
      check bool "history atomic under sharded reactor" true
        (Checker.Atomicity.is_atomic res.Session.history);
      check int "no client starved" 0 res.Session.unavailable)

let test_reactor_sharded_restart mode () =
  (* The deterministic crash-stop script against sharded reactors: the
     recover/fresh dichotomy must be exactly the single-shard one. *)
  let o = Chaos.restart_scenario ~server_shards:2 ~mode () in
  match mode with
  | `Recover ->
    check bool "recovered sharded restart atomic" true o.Chaos.atomic
  | `Fresh ->
    check bool "fresh sharded restart loses the write" false o.Chaos.atomic;
    check bool "checker produced a witness" true (o.Chaos.witness <> None)

(* ------------------------------------------------------------------ *)
(* Mux: the shared-connection client plane                              *)
(* ------------------------------------------------------------------ *)

let test_mux_interleaved_clients () =
  (* Many concurrent clients over ONE shared connection per server: the
     demux must route every reply to the mailbox that opened the round
     trip.  Any cross-client delivery would either strand an exec (its
     quorum never fills → Unavailable) or surface as a late/dropped
     frame, so "every op completes, exactly one round trip each, zero
     late replies" is a routing-correctness certificate. *)
  let replica = Replica.create () in
  let server = Server.start ~id:0 ~replica () in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server) in
  let mux = Mux.create ~servers:[| addr |] ~quorum:1 () in
  let n_clients = 8 and ops = 40 in
  let completed = Array.make n_clients 0 in
  let failures = Array.make n_clients None in
  let handles = Array.init n_clients (fun c -> Mux.client mux ~client:(100 + c)) in
  let body c () =
    let h = handles.(c) in
    try
      for n = 1 to ops do
        let ts = (c * 10_000) + n in
        let req =
          if n mod 3 = 0 then Wire.Query []
          else Wire.Update (value ts c ((ts * 7) + c))
        in
        Mux.exec h req (fun replies ->
            match replies with
            | [ (0, _) ] -> completed.(c) <- completed.(c) + 1
            | rs ->
              failures.(c) <-
                Some (Printf.sprintf "client %d: %d replies" c (List.length rs)))
      done
    with Mux.Unavailable msg -> failures.(c) <- Some msg
  in
  let threads = List.init n_clients (fun c -> Thread.create (body c) ()) in
  List.iter Thread.join threads;
  Array.iteri
    (fun c f ->
      match f with
      | Some msg -> Alcotest.failf "client %d failed: %s" c msg
      | None ->
        check int "every op completed" ops completed.(c);
        check int "one round trip per op" ops
          (Mux.rounds_completed handles.(c));
        check int "no stray deliveries" 0 (Mux.late_replies handles.(c)))
    failures;
  Array.iter Mux.release handles;
  Mux.shutdown mux;
  Server.stop server

let test_mux_quorum_with_dead_server () =
  (* Quorum semantics on the shared plane: with one of three servers
     never reachable, execs still complete on the surviving quorum. *)
  let replicas = Array.init 2 (fun _ -> Replica.create ()) in
  let servers =
    Array.mapi (fun i r -> Server.start ~id:i ~replica:r ()) replicas
  in
  let dead = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  (* Bound but never listening: connects are refused. *)
  let dead_port =
    match Unix.getsockname dead with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let addr p = Unix.ADDR_INET (Unix.inet_addr_loopback, p) in
  let addrs =
    [|
      addr (Server.port servers.(0));
      addr dead_port;
      addr (Server.port servers.(1));
    |]
  in
  let mux =
    Mux.create ~rt_timeout:0.2 ~servers:addrs ~quorum:2 ()
  in
  let h = Mux.client mux ~client:50 in
  let got = ref [] in
  Mux.exec h (Wire.Update (value 1 0 11)) (fun rs -> got := List.map fst rs);
  check bool "quorum from live servers" true
    (List.sort compare !got = [ 0; 2 ]);
  Mux.release h;
  Mux.shutdown mux;
  (try Unix.close dead with Unix.Unix_error _ -> ());
  Array.iter Server.stop servers

(* ------------------------------------------------------------------ *)
(* Live cluster runs                                                    *)
(* ------------------------------------------------------------------ *)

let atomic history =
  match Checker.Atomicity.check history with Ok () -> true | Error _ -> false

let run_live ?kill_at ?transport ?(rt_timeout = 0.5) ?max_rt_retries ~register
    ~s ~tol spec =
  let cluster = Cluster.start ~s ~tol () in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown cluster)
    (fun () ->
      Session.run ?kill_at ?transport ~rt_timeout ?max_rt_retries ~register
        ~cluster spec)

let test_live_ls97_atomic () =
  let res =
    run_live ~register:Registry.abd_mwmr ~s:3 ~tol:1
      {
        Session.default_spec with
        writers = 2;
        readers = 2;
        writes_per_writer = 15;
        reads_per_reader = 25;
      }
  in
  check bool "history atomic" true (atomic res.Session.history);
  check int "no client starved" 0 res.Session.unavailable;
  check bool "writes take two rounds" true (res.Session.write_rounds = 2.0);
  check bool "reads take two rounds" true (res.Session.read_rounds = 2.0)

let test_live_w2r1_fast_read () =
  (* S=5 t=1 R=2: inside the R < S/t − 2 regime, so W2R1 must be atomic
     with strictly one-round reads — the paper's headline, on sockets. *)
  let res =
    run_live ~register:Registry.fastread_w2r1 ~s:5 ~tol:1
      {
        Session.default_spec with
        writers = 2;
        readers = 2;
        writes_per_writer = 15;
        reads_per_reader = 25;
      }
  in
  check bool "history atomic" true (atomic res.Session.history);
  check bool "writes take two rounds" true (res.Session.write_rounds = 2.0);
  check bool "reads are one round" true (res.Session.read_rounds = 1.0)

let test_live_single_writer_guard () =
  let cluster = Cluster.start ~s:3 ~tol:1 () in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown cluster)
    (fun () ->
      check bool "SWMR rejects two writers" true
        (match
           Session.run ~register:Registry.abd_swmr ~cluster
             { Session.default_spec with writers = 2 }
         with
        | _ -> false
        | exception Invalid_argument _ -> true))

let test_live_ls97_sockets_path () =
  (* The baseline private-sockets plane stays a first-class citizen: the
     same workload must pass over [`Sockets] as over the default mux. *)
  let res =
    run_live ~transport:`Sockets ~register:Registry.abd_mwmr ~s:3 ~tol:1
      {
        Session.default_spec with
        writers = 2;
        readers = 2;
        writes_per_writer = 10;
        reads_per_reader = 15;
      }
  in
  check bool "history atomic" true (atomic res.Session.history);
  check int "no client starved" 0 res.Session.unavailable;
  check bool "writes take two rounds" true (res.Session.write_rounds = 2.0)

let test_live_survives_t_kills transport () =
  (* S=5 t=2: kill two real server processes mid-run.  The remaining
     quorum of 3 must keep completing operations and the history must
     still be atomic — the acceptance bar for the live transport, on
     both data planes. *)
  let res =
    run_live ~transport
      ~kill_at:[ (0.02, 0); (0.05, 3) ]
      ~register:Registry.abd_mwmr ~s:5 ~tol:2
      {
        Session.writers = 2;
        readers = 2;
        writes_per_writer = 20;
        reads_per_reader = 30;
        write_think = 0.004;
        read_think = 0.003;
      }
  in
  check (Alcotest.list int) "both targets down" [ 0; 3 ] res.Session.killed;
  check int "no client starved" 0 res.Session.unavailable;
  check bool "history atomic across the kills" true (atomic res.Session.history);
  check bool "all writes completed" true
    (List.for_all Histories.Op.is_complete
       (Histories.History.ops res.Session.history))

let test_rounds_accounting_under_overkill () =
  (* Kill MORE servers than the protocol tolerates, with a short timeout
     and no retries, so some clients abort mid-operation.  The rounds an
     aborted op burned before failing (e.g. the Query round of a
     two-round write whose Update found no quorum) must NOT leak into
     the per-op means: every completed LS97 write is exactly 2 rounds,
     so the mean over completed ops stays exactly 2.0 (or 0 if nothing
     completed) no matter where the crash landed. *)
  let res =
    run_live
      ~kill_at:[ (0.03, 0); (0.03, 1) ]
      ~rt_timeout:0.05 ~max_rt_retries:0 ~register:Registry.abd_mwmr ~s:3
      ~tol:1
      {
        Session.writers = 2;
        readers = 2;
        writes_per_writer = 50;
        reads_per_reader = 50;
        write_think = 0.002;
        read_think = 0.002;
      }
  in
  check bool "quorum genuinely lost" true (res.Session.unavailable > 0);
  check bool "completed writes average exactly two rounds" true
    (res.Session.write_rounds = 2.0 || res.Session.write_rounds = 0.0);
  check bool "completed reads average exactly two rounds" true
    (res.Session.read_rounds = 2.0 || res.Session.read_rounds = 0.0);
  (* The merged history may end with pending ops (the aborted ones) but
     everything that responded must still be atomic. *)
  check bool "history atomic" true (atomic res.Session.history)

let test_live_adaptive_atomic () =
  (* The adaptive register beyond the fast-read threshold, on sockets. *)
  let res =
    run_live ~register:Registry.adaptive ~s:3 ~tol:1
      {
        Session.default_spec with
        writers = 2;
        readers = 3;
        writes_per_writer = 10;
        reads_per_reader = 15;
      }
  in
  check bool "history atomic" true (atomic res.Session.history);
  check int "no client starved" 0 res.Session.unavailable

(* ------------------------------------------------------------------ *)
(* Chaos: fault injection, EINTR hardening, restart/recovery            *)
(* ------------------------------------------------------------------ *)

let test_clock_advances () =
  let a = Clock.now () in
  Thread.delay 0.01;
  let b = Clock.now () in
  check bool "clock advances" true (b > a);
  check bool "monotonic source available" true Clock.monotonic

let test_netio_eintr_retry () =
  (* OCaml installs signal handlers without SA_RESTART, so a blocking
     write interrupted by SIGALRM raises EINTR.  Storm the process with
     an interval timer while pushing megabytes through a socketpair with
     a deliberately slow consumer: Netio.write_all / Netio.read must
     retry through every interruption and deliver every byte. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let total = 4 * 1024 * 1024 in
  let received = ref 0 in
  let reader =
    Thread.create
      (fun () ->
        let buf = Bytes.create 65536 in
        let rec loop () =
          let n = Netio.read b buf 0 (Bytes.length buf) in
          if n > 0 then begin
            received := !received + n;
            (* Slow consumer: keeps the writer blocked inside Unix.write
               long enough for timer signals to land mid-call. *)
            Thread.delay 0.001;
            loop ()
          end
        in
        loop ())
      ()
  in
  let old = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  let timer v = { Unix.it_interval = v; it_value = v } in
  ignore (Unix.setitimer Unix.ITIMER_REAL (timer 0.002));
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.setitimer Unix.ITIMER_REAL (timer 0.0));
      Sys.set_signal Sys.sigalrm old)
    (fun () ->
      let chunk = Bytes.make 65536 'x' in
      let sent = ref 0 in
      while !sent < total do
        let len = min (Bytes.length chunk) (total - !sent) in
        Netio.write_all a chunk 0 len;
        sent := !sent + len
      done);
  Unix.close a;
  Thread.join reader;
  Unix.close b;
  check int "every byte arrived despite the signal storm" total !received

let test_faults_deterministic () =
  let probe p =
    List.init 400 (fun i ->
        Faults.deliveries p ~dir:Faults.To_server ~server:(i mod 5)
          ~client:(5 + (i mod 4)) ~rt:(i / 4) ~salt:(i mod 3))
  in
  let d1 = probe (Chaos.plan ~seed:7 ()) in
  check bool "same seed, same schedule" true
    (d1 = probe (Chaos.plan ~seed:7 ()));
  check bool "different seed, different schedule" true
    (d1 <> probe (Chaos.plan ~seed:8 ()));
  check bool "some frames dropped" true (List.exists (fun d -> d = []) d1);
  check bool "some frames duplicated" true
    (List.exists (fun d -> List.length d = 2) d1);
  check bool "retry salt redraws the decision" true
    (List.exists
       (fun i ->
         let p = Chaos.plan ~seed:7 () in
         let at salt =
           Faults.deliveries p ~dir:Faults.To_server ~server:0 ~client:5 ~rt:i
             ~salt
         in
         at 0 = [] && at 1 <> [])
       (List.init 100 Fun.id))

let test_dup_delay_independent_copies () =
  (* Duplicate + Delay composed: both copies of a frame must draw their
     own deadline (shared deadlines would make the duplicate invisible
     to reordering-sensitive code paths), stay within the rule's bound,
     and replay bit-identically from the seed. *)
  let mk () =
    Faults.create ~seed:11
      [ Faults.rule Faults.Duplicate; Faults.rule (Faults.Delay 0.05) ]
  in
  let probe plan i =
    Faults.deliveries plan ~dir:Faults.From_server ~server:(i mod 4)
      ~client:(4 + (i mod 3)) ~rt:(i / 3) ~salt:0
  in
  let ds = List.init 200 (probe (mk ())) in
  check bool "every frame staged twice" true
    (List.for_all (fun d -> List.length d = 2) ds);
  check bool "deadlines within the delay bound" true
    (List.for_all
       (List.for_all (fun d -> d.Faults.after >= 0.0 && d.Faults.after <= 0.05))
       ds);
  check bool "copies draw independent deadlines" true
    (List.exists
       (function
         | [ a; b ] -> a.Faults.after <> b.Faults.after
         | [] | [ _ ] | _ :: _ :: _ -> false)
       ds);
  check bool "replay is deterministic" true (ds = List.init 200 (probe (mk ())))

let staged_deliveries_prop =
  (* The determinism contract extended to staged (delayed + duplicated)
     deliveries: any (seed, link, rt) replays the same schedule on a
     fresh plan, both directions, every copy within bounds. *)
  QCheck.Test.make ~count:200 ~name:"staged deliveries replay deterministically"
    QCheck.(quad small_nat small_nat small_nat small_nat)
    (fun (seed, server, client, rt) ->
      let mk () =
        Faults.create ~seed
          [ Faults.rule Faults.Duplicate; Faults.rule (Faults.Delay 0.05) ]
      in
      let p1 = mk () and p2 = mk () in
      List.for_all
        (fun dir ->
          let d1 = Faults.deliveries p1 ~dir ~server ~client ~rt ~salt:0 in
          let d2 = Faults.deliveries p2 ~dir ~server ~client ~rt ~salt:0 in
          d1 = d2
          && List.length d1 = 2
          && List.for_all
               (fun d ->
                 d.Faults.after >= 0.0
                 && d.Faults.after <= 0.05
                 && not d.Faults.truncated)
               d1)
        [ Faults.To_server; Faults.From_server ])

let test_mux_hol_isolation () =
  (* Head-of-line regression: a staged (delayed) frame of one mux client
     must park on the shared connection's deadline queue, not sleep in
     the sender with the connection lock held.  Client 100's 0.4s-delayed
     op rides out its deadline while client 101 pushes ten ops through
     the same connection at full speed. *)
  let replica = Replica.create () in
  let server = Server.start ~id:0 ~replica () in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server) in
  let faults =
    Faults.create
      [
        Faults.rule ~dir:Faults.To_server ~clients:[ 100 ]
          (Faults.Latency { base = 0.4; jitter = 0.0 });
      ]
  in
  let mux = Mux.create ~faults ~servers:[| addr |] ~quorum:1 () in
  let slow = Mux.client mux ~client:100 in
  let fast = Mux.client mux ~client:101 in
  let slow_elapsed = ref 0.0 in
  let t =
    Thread.create
      (fun () ->
        let t0 = Clock.now () in
        Mux.exec slow (Wire.Update (value 1 0 1)) (fun _ -> ());
        slow_elapsed := Clock.now () -. t0)
      ()
  in
  Thread.delay 0.05;
  (* The slow op is now parked; the fast client must not feel it. *)
  let t0 = Clock.now () in
  for n = 1 to 10 do
    Mux.exec fast (Wire.Update (value (1000 + n) 1 n)) (fun _ -> ())
  done;
  let fast_elapsed = Clock.now () -. t0 in
  Thread.join t;
  check bool "fast client unaffected by the parked frame" true
    (fast_elapsed < 0.2);
  check bool "slow client actually delayed" true (!slow_elapsed >= 0.3);
  Mux.release slow;
  Mux.release fast;
  Mux.shutdown mux;
  Server.stop server

let test_endpoint_hol_across_servers () =
  (* Same regression on the private-socket plane: a delay on the link to
     server 0 must not push back the send time to servers 1 and 2 — the
     quorum completes on the undelayed majority in wire time. *)
  let replicas = Array.init 3 (fun _ -> Replica.create ()) in
  let servers =
    Array.mapi (fun i r -> Server.start ~id:i ~replica:r ()) replicas
  in
  let addrs =
    Array.map
      (fun s -> Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port s))
      servers
  in
  let faults =
    Faults.create
      [
        Faults.rule ~dir:Faults.To_server ~servers:[ 0 ]
          (Faults.Latency { base = 0.4; jitter = 0.0 });
      ]
  in
  let ep = Endpoint.create ~faults ~client:42 ~servers:addrs ~quorum:2 () in
  let t0 = Clock.now () in
  let got = ref [] in
  Endpoint.exec ep (Wire.Update (value 1 0 7)) (fun rs -> got := List.map fst rs);
  let elapsed = Clock.now () -. t0 in
  check bool "quorum from the undelayed servers" true
    (List.sort compare !got = [ 1; 2 ]);
  check bool "delay on server 0 does not block sends to 1,2" true
    (elapsed < 0.2);
  Endpoint.close ep;
  Array.iter Server.stop servers

(* ------------------------------------------------------------------ *)
(* Geo profiles: one geography, two compilations                        *)
(* ------------------------------------------------------------------ *)

let test_geo_compilations_agree () =
  (* Every profile's two compilations — the simulator's latency model
     and the live fault rules — must place each (src, dst) delay in the
     same [base, base + jitter) band read off the same matrices. *)
  List.iter
    (fun p ->
      let s = 4 in
      let clients = [ 4; 5; 6 ] in
      let plan = Geo.plan p ~s ~clients in
      let model = Geo.latency_model p in
      let rng = Simulation.Rng.create ~seed:9 in
      let band ~src ~dst d what =
        let base = Geo.base p ~src ~dst in
        let j = Geo.jitter_bound p ~src ~dst in
        check bool
          (Printf.sprintf "%s %s %d->%d in band" (Geo.name p) what src dst)
          true
          (d >= base && d < base +. j)
      in
      List.iter
        (fun c ->
          for srv = 0 to s - 1 do
            (match
               Faults.deliveries plan ~dir:Faults.To_server ~server:srv
                 ~client:c ~rt:1 ~salt:0
             with
            | [ d ] -> band ~src:c ~dst:srv d.Faults.after "request leg"
            | [] | _ :: _ ->
              Alcotest.fail "geo rule must stage exactly one copy");
            (match
               Faults.deliveries plan ~dir:Faults.From_server ~server:srv
                 ~client:c ~rt:1 ~salt:0
             with
            | [ d ] -> band ~src:srv ~dst:c d.Faults.after "reply leg"
            | [] | _ :: _ ->
              Alcotest.fail "geo rule must stage exactly one copy");
            for _ = 1 to 10 do
              band ~src:c ~dst:srv
                (Simulation.Latency.sample model rng ~src:c ~dst:srv)
                "sim sample"
            done
          done)
        clients)
    Geo.profiles

let geo_symmetry_prop =
  (* The symmetric profiles must cost the same in both directions for
     any node pair; asym-updown must not whenever the pair crosses the
     edge/core boundary. *)
  QCheck.Test.make ~count:200 ~name:"geo profile (a)symmetry"
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let sym p =
        Geo.base p ~src:a ~dst:b = Geo.base p ~src:b ~dst:a
        && Geo.jitter_bound p ~src:a ~dst:b = Geo.jitter_bound p ~src:b ~dst:a
      in
      let cross =
        Geo.region_of Geo.asym_updown a <> Geo.region_of Geo.asym_updown b
      in
      sym Geo.lan
      && sym Geo.wan_3region
      && sym Geo.mixed_1ms_80ms
      &&
      if cross then
        Geo.base Geo.asym_updown ~src:a ~dst:b
        <> Geo.base Geo.asym_updown ~src:b ~dst:a
      else sym Geo.asym_updown)

let test_geo_wan3_live_atomic () =
  (* End to end: a live cluster under the wan-3region plan, streaming
     checker attached.  Atomicity must hold, nobody starves, and the
     cross-region quorum round trips must actually cost wire time. *)
  let profile = Geo.wan_3region in
  let s = 3 and tol = 1 in
  let w = 2 and r = 2 in
  let clients = List.init (w + r) (fun i -> s + i) in
  let faults = Geo.plan profile ~s ~clients in
  let cluster = Cluster.start ~faults ~s ~tol () in
  let res =
    Fun.protect
      ~finally:(fun () -> Cluster.shutdown cluster)
      (fun () ->
        Session.run ~faults
          ~rt_timeout:(Float.max 1.0 (8.0 *. Geo.max_rtt profile))
          ~live_check:true ~register:Registry.abd_mwmr ~cluster
          {
            Session.default_spec with
            writers = w;
            readers = r;
            writes_per_writer = 2;
            reads_per_reader = 3;
          })
  in
  check bool "atomic under wan-3region" true (atomic res.Session.history);
  (match res.Session.online with
  | None -> Alcotest.fail "live_check:true returned no online report"
  | Some rep ->
    check bool "streaming verdict agrees" true (Check_sink.atomic rep));
  check int "no client starved" 0 res.Session.unavailable;
  check bool "writes still two rounds" true (res.Session.write_rounds = 2.0);
  (* S=3 puts one server per region, so every quorum's second reply is
     a ~80ms-RTT cross-region trip: the run cannot be loopback-fast. *)
  check bool "cross-region rounds cost wire time" true
    (res.Session.duration > 0.2)

let test_chaos_soak transport () =
  (* Seeded drop/delay/duplicate storm plus a kill → recover-restart,
     inside a possible regime: the run must complete with the history
     atomic, lossy links showing up only as retries — and the Table-1
     rounds-per-completed-op contract intact. *)
  let sk =
    Chaos.soak ~transport ~seed:3 ~ops:6 ~register:Registry.abd_mwmr ()
  in
  check bool "regime is possible" true sk.Chaos.expected_atomic;
  check bool "atomic under chaos" true sk.Chaos.atomic;
  check int "no client starved" 0 sk.Chaos.result.Session.unavailable;
  check bool "lossy links cost retries" true
    (sk.Chaos.result.Session.retries > 0);
  check bool "completed writes still two rounds" true
    (sk.Chaos.result.Session.write_rounds = 2.0)

let test_live_check_session () =
  (* The streaming checker rides a healthy live session: the online
     report must agree with the batch verdict on the merged history,
     count every completed operation, and keep its window bounded. *)
  let cluster = Cluster.start ~s:3 ~tol:1 () in
  let res =
    Fun.protect
      ~finally:(fun () -> Cluster.shutdown cluster)
      (fun () ->
        Session.run ~rt_timeout:0.5 ~live_check:true
          ~register:Registry.abd_mwmr ~cluster
          {
            Session.default_spec with
            writers = 2;
            readers = 2;
            writes_per_writer = 15;
            reads_per_reader = 25;
          })
  in
  match res.Session.online with
  | None -> Alcotest.fail "live_check:true returned no online report"
  | Some r ->
    check bool "online atomic" true (Check_sink.atomic r);
    check bool "batch agrees" true (atomic res.Session.history);
    check int "every completed op checked" 80 r.Check_sink.checked;
    check int "single live key" 1 r.Check_sink.keys;
    check bool "window bounded well below history" true
      (r.Check_sink.peak_window > 0 && r.Check_sink.peak_window <= 80)

let test_live_check_chaos transport () =
  (* Same storm as [test_chaos_soak], with the streaming checker
     attached: verdicts must agree and throughput accounting must not
     lose operations (aborted in-flight ops are fed as pending). *)
  let sk =
    Chaos.soak ~transport ~seed:3 ~ops:6 ~live_check:true
      ~register:Registry.abd_mwmr ()
  in
  check bool "regime is possible" true sk.Chaos.expected_atomic;
  check bool "batch atomic under chaos" true sk.Chaos.atomic;
  match sk.Chaos.result.Session.online with
  | None -> Alcotest.fail "live_check:true returned no online report"
  | Some r ->
    check bool "online agrees with batch" true (Check_sink.atomic r);
    check bool "checked the whole stream" true (r.Check_sink.checked > 0);
    check bool "window bounded" true
      (r.Check_sink.peak_window <= r.Check_sink.checked)

let test_restart_recover transport () =
  let o = Chaos.restart_scenario ~transport ~mode:`Recover () in
  check bool "recovered restart preserves atomicity" true o.Chaos.atomic;
  check bool "read returns the acknowledged write" true
    (o.Chaos.read_value = Some (Histories.History.initial_value + 41))

let test_restart_fresh () =
  let o = Chaos.restart_scenario ~mode:`Fresh () in
  check bool "fresh restart loses the acknowledged write" false o.Chaos.atomic;
  check bool "checker produced a witness" true (o.Chaos.witness <> None);
  check bool "read returned the stale initial value" true
    (o.Chaos.read_value = Some Histories.History.initial_value)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "transport"
    [
      ( "codec",
        [
          Alcotest.test_case "sample round trips" `Quick
            test_codec_roundtrip_samples;
          Alcotest.test_case "large vectors" `Quick test_codec_large_vector;
          Alcotest.test_case "rejects truncation" `Quick
            test_codec_rejects_truncation;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          QCheck_alcotest.to_alcotest codec_roundtrip_prop;
          QCheck_alcotest.to_alcotest codec_prefix_prop;
          QCheck_alcotest.to_alcotest codec_encode_into_prop;
        ] );
      ( "stream",
        [
          Alcotest.test_case "byte at a time" `Quick test_stream_byte_at_a_time;
          Alcotest.test_case "mixed chunks" `Quick test_stream_mixed_chunks;
        ] );
      ( "server",
        [
          Alcotest.test_case "round trips" `Quick test_server_roundtrip;
          Alcotest.test_case "survives garbage peers" `Quick
            test_server_survives_garbage;
          Alcotest.test_case "reaps finished handlers" `Quick
            test_server_reaps_handlers;
        ] );
      ( "reactor",
        [
          Alcotest.test_case "interleaved byte-at-a-time frames" `Quick
            test_reactor_interleaved_partial_frames;
          Alcotest.test_case "backpressure on a slow reader" `Quick
            test_reactor_backpressure_slow_reader;
          Alcotest.test_case "256 concurrent short-lived connections" `Quick
            test_reactor_connection_churn;
          Alcotest.test_case "sharded: live run with kill/restart" `Quick
            test_reactor_sharded_live;
          Alcotest.test_case "sharded: restart recover" `Quick
            (test_reactor_sharded_restart `Recover);
          Alcotest.test_case "sharded: restart fresh" `Quick
            (test_reactor_sharded_restart `Fresh);
        ] );
      ( "mux",
        [
          Alcotest.test_case "interleaved clients, one shared conn" `Quick
            test_mux_interleaved_clients;
          Alcotest.test_case "quorum despite dead server" `Quick
            test_mux_quorum_with_dead_server;
          Alcotest.test_case "delayed frame does not block other clients"
            `Quick test_mux_hol_isolation;
          Alcotest.test_case "delayed link does not block other servers"
            `Quick test_endpoint_hol_across_servers;
        ] );
      ( "live",
        [
          Alcotest.test_case "LS97 atomic (mux)" `Quick test_live_ls97_atomic;
          Alcotest.test_case "LS97 atomic (private sockets)" `Quick
            test_live_ls97_sockets_path;
          Alcotest.test_case "W2R1 one-round reads" `Quick
            test_live_w2r1_fast_read;
          Alcotest.test_case "single-writer guard" `Quick
            test_live_single_writer_guard;
          Alcotest.test_case "survives t kills (mux)" `Quick
            (test_live_survives_t_kills `Mux);
          Alcotest.test_case "survives t kills (sockets)" `Quick
            (test_live_survives_t_kills `Sockets);
          Alcotest.test_case "rounds accounting under overkill" `Quick
            test_rounds_accounting_under_overkill;
          Alcotest.test_case "adaptive atomic" `Quick test_live_adaptive_atomic;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "EINTR storm during writes" `Quick
            test_netio_eintr_retry;
          Alcotest.test_case "fault plans are deterministic" `Quick
            test_faults_deterministic;
          Alcotest.test_case "duplicate+delay: independent copy deadlines"
            `Quick test_dup_delay_independent_copies;
          QCheck_alcotest.to_alcotest staged_deliveries_prop;
          Alcotest.test_case "soak atomic under faults (mux)" `Quick
            (test_chaos_soak `Mux);
          Alcotest.test_case "soak atomic under faults (sockets)" `Quick
            (test_chaos_soak `Sockets);
          Alcotest.test_case "live checker on healthy session" `Quick
            test_live_check_session;
          Alcotest.test_case "live checker rides the storm" `Quick
            (test_live_check_chaos `Mux);
          Alcotest.test_case "restart with recovery is atomic (mux)" `Quick
            (test_restart_recover `Mux);
          Alcotest.test_case "restart with recovery is atomic (sockets)" `Quick
            (test_restart_recover `Sockets);
          Alcotest.test_case "fresh restart yields a witness" `Quick
            test_restart_fresh;
        ] );
      ( "geo",
        [
          Alcotest.test_case "both compilations read the same matrices"
            `Quick test_geo_compilations_agree;
          QCheck_alcotest.to_alcotest geo_symmetry_prop;
          Alcotest.test_case "wan-3region live session atomic" `Quick
            test_geo_wan3_live_atomic;
        ] );
    ]
