(* Tests for the live TCP transport: the wire codec (round-trip and
   strictness), stream reassembly under adversarial chunking, a real
   loopback server, and full live cluster runs — including surviving [t]
   genuine server kills mid-run with the history still atomic. *)

open Registers
open Transport

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let tag ts wid = { Tstamp.ts; wid }
let value ts wid payload = { Wire.tag = tag ts wid; payload }

(* ------------------------------------------------------------------ *)
(* Codec: deterministic round trips                                     *)
(* ------------------------------------------------------------------ *)

let sample_frames =
  [
    Codec.Request { rt = 0; client = 0; req = Wire.Query [] };
    Codec.Request
      { rt = 1; client = 7; req = Wire.Query [ Wire.initial_value_entry ] };
    Codec.Request
      {
        rt = max_int;
        client = 3;
        req = Wire.Update (value max_int 11 min_int);
      };
    Codec.Reply
      { rt = 42; server = 4; rep = Wire.Write_ack { current = value 5 1 500 } };
    Codec.Reply
      {
        rt = 9;
        server = 0;
        rep =
          Wire.Read_ack
            {
              current = value 3 2 303;
              vector =
                [
                  (Wire.initial_value_entry, [ 10; 11; 12 ]);
                  (value 1 0 101, []);
                  (value 3 2 303, [ 13 ]);
                ];
            };
      };
  ]

let test_codec_roundtrip_samples () =
  List.iter
    (fun f ->
      check bool "decode (encode f) = f" true (Codec.decode (Codec.encode f) = f);
      check bool "body round trip" true
        (Codec.decode_body (Codec.encode_body f) = f))
    sample_frames

let test_codec_large_vector () =
  (* A READACK carrying a big value vector with fat updated sets — the
     frame the codec must not choke on. *)
  let vector =
    List.init 5_000 (fun i ->
        (value i (i mod 5) (i * 17), List.init (i mod 20) (fun j -> j + 100)))
  in
  let f =
    Codec.Reply
      { rt = 1; server = 2; rep = Wire.Read_ack { current = value 5_000 0 1; vector } }
  in
  let s = Codec.encode f in
  check bool "large frame survives" true (Codec.decode s = f);
  let q =
    Codec.Request
      { rt = 2; client = 9; req = Wire.Query (List.map fst vector) }
  in
  check bool "large query survives" true (Codec.decode (Codec.encode q) = q)

(* ------------------------------------------------------------------ *)
(* Codec: strictness                                                    *)
(* ------------------------------------------------------------------ *)

let rejects s =
  match Codec.decode s with
  | _ -> false
  | exception Codec.Decode_error _ -> true

let test_codec_rejects_truncation () =
  let full = Codec.encode (List.nth sample_frames 4) in
  for cut = 0 to String.length full - 1 do
    if not (rejects (String.sub full 0 cut)) then
      Alcotest.failf "truncation to %d bytes accepted" cut
  done

let test_codec_rejects_garbage () =
  let full = Codec.encode (List.hd sample_frames) in
  check bool "trailing byte" true (rejects (full ^ "\x00"));
  check bool "bad tag" true
    (rejects
       (let b = Bytes.of_string full in
        Bytes.set b 4 '\xff';
        Bytes.to_string b));
  check bool "absurd length prefix" true
    (rejects ("\xff\xff\xff\xff" ^ String.make 8 'x'));
  check bool "negative list length" true
    (* Request/Query with length -1. *)
    (rejects (Codec.encode (Codec.Request { rt = 0; client = 0; req = Wire.Query [] })
              |> fun s ->
              let b = Bytes.of_string s in
              Bytes.fill b (String.length s - 8) 8 '\xff';
              Bytes.to_string b))

(* ------------------------------------------------------------------ *)
(* Codec: qcheck round trip                                             *)
(* ------------------------------------------------------------------ *)

let frame_gen =
  let open QCheck.Gen in
  let any_int =
    frequency
      [ (4, small_signed_int); (2, int); (1, return max_int); (1, return min_int) ]
  in
  let tag_gen =
    let* ts = frequency [ (4, small_nat); (1, int) ] in
    let* wid = int_range (-1) 10 in
    return { Tstamp.ts; wid }
  in
  let value_gen =
    let* tag = tag_gen in
    let* payload = any_int in
    return { Wire.tag; payload }
  in
  let req_gen =
    frequency
      [
        (2, map (fun vs -> Wire.Query vs) (list_size (int_bound 12) value_gen));
        (2, map (fun v -> Wire.Update v) value_gen);
      ]
  in
  let rep_gen =
    frequency
      [
        (1, map (fun v -> Wire.Write_ack { current = v }) value_gen);
        ( 2,
          let* current = value_gen in
          let* vector =
            list_size (int_bound 12)
              (pair value_gen (list_size (int_bound 6) small_nat))
          in
          return (Wire.Read_ack { current; vector }) );
      ]
  in
  let* rt = small_nat and* peer = int_bound 1000 in
  frequency
    [
      (1, map (fun req -> Codec.Request { rt; client = peer; req }) req_gen);
      (1, map (fun rep -> Codec.Reply { rt; server = peer; rep }) rep_gen);
    ]

let frame_print f =
  match f with
  | Codec.Request { rt; client; req } ->
    Format.asprintf "req rt=%d client=%d %a" rt client Wire.pp_req req
  | Codec.Reply { rt; server; rep } ->
    Format.asprintf "rep rt=%d server=%d %a" rt server Wire.pp_rep rep

let codec_roundtrip_prop =
  QCheck.Test.make
    ~name:"codec round trip: decode (encode f) = f"
    ~count:500
    (QCheck.make ~print:frame_print frame_gen)
    (fun f -> Codec.decode (Codec.encode f) = f)

let codec_prefix_prop =
  QCheck.Test.make
    ~name:"codec rejects every strict prefix"
    ~count:100
    (QCheck.make ~print:frame_print frame_gen)
    (fun f ->
      let s = Codec.encode f in
      let cut = String.length s / 2 in
      rejects (String.sub s 0 cut))

(* ------------------------------------------------------------------ *)
(* Stream reassembly                                                    *)
(* ------------------------------------------------------------------ *)

let test_stream_byte_at_a_time () =
  let frames = sample_frames in
  let wire = String.concat "" (List.map Codec.encode frames) in
  let st = Codec.Stream.create () in
  let out = ref [] in
  String.iter
    (fun ch ->
      Codec.Stream.feed st (Bytes.make 1 ch) 1;
      let rec drain () =
        match Codec.Stream.next st with
        | Some f ->
          out := f :: !out;
          drain ()
        | None -> ()
      in
      drain ())
    wire;
  check bool "all frames recovered in order" true (List.rev !out = frames);
  check bool "no residue" true (Codec.Stream.next st = None)

let test_stream_mixed_chunks () =
  let frames = List.concat [ sample_frames; sample_frames; sample_frames ] in
  let wire = String.concat "" (List.map Codec.encode frames) in
  let st = Codec.Stream.create () in
  let out = ref [] in
  let pos = ref 0 in
  let sizes = [ 1; 3; 7; 64; 2; 1024; 5 ] in
  let i = ref 0 in
  while !pos < String.length wire do
    let n = min (List.nth sizes (!i mod List.length sizes)) (String.length wire - !pos) in
    incr i;
    Codec.Stream.feed st (Bytes.of_string (String.sub wire !pos n)) n;
    pos := !pos + n;
    let rec drain () =
      match Codec.Stream.next st with
      | Some f ->
        out := f :: !out;
        drain ()
      | None -> ()
    in
    drain ()
  done;
  check int "frame count" (List.length frames) (List.length !out);
  check bool "order preserved" true (List.rev !out = frames)

(* ------------------------------------------------------------------ *)
(* A real loopback server                                               *)
(* ------------------------------------------------------------------ *)

let test_server_roundtrip () =
  let replica = Replica.create () in
  let server = Server.start ~id:0 ~replica () in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server) in
  let ep = Endpoint.create ~client:10 ~servers:[| addr |] ~quorum:1 () in
  let got = ref None in
  Endpoint.exec ep (Wire.Update (value 1 0 101)) (fun replies ->
      got := Some replies);
  (match !got with
  | Some [ (0, Wire.Write_ack { current }) ] ->
    check bool "server adopted the value" true
      (Tstamp.equal current.Wire.tag (tag 1 0))
  | _ -> Alcotest.fail "expected one write ack from server 0");
  let got = ref None in
  Endpoint.exec ep (Wire.Query []) (fun replies -> got := Some replies);
  (match !got with
  | Some [ (0, Wire.Read_ack { current; vector }) ] ->
    check bool "query sees the update" true
      (Tstamp.equal current.Wire.tag (tag 1 0));
    check bool "vector records the writer" true
      (List.exists
         (fun (v, upd) ->
           Tstamp.equal v.Wire.tag (tag 1 0) && List.mem 10 upd)
         vector)
  | _ -> Alcotest.fail "expected one read ack from server 0");
  check int "two rounds completed" 2 (Endpoint.rounds_completed ep);
  Endpoint.close ep;
  Server.stop server

let test_server_survives_garbage () =
  (* A peer speaking garbage gets disconnected; the server keeps serving
     well-formed clients. *)
  let replica = Replica.create () in
  let server = Server.start ~id:0 ~replica () in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server) in
  let bad = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect bad addr;
  let junk = Bytes.of_string "\xff\xff\xff\xffnonsense" in
  ignore (Unix.write bad junk 0 (Bytes.length junk));
  let ep = Endpoint.create ~client:11 ~servers:[| addr |] ~quorum:1 () in
  let ok = ref false in
  Endpoint.exec ep (Wire.Update (value 2 1 202)) (fun _ -> ok := true);
  check bool "good client still served" true !ok;
  (try Unix.close bad with _ -> ());
  Endpoint.close ep;
  Server.stop server

(* ------------------------------------------------------------------ *)
(* Live cluster runs                                                    *)
(* ------------------------------------------------------------------ *)

let atomic history =
  match Checker.Atomicity.check history with Ok () -> true | Error _ -> false

let run_live ?kill_at ?(rt_timeout = 0.5) ~register ~s ~tol spec =
  let cluster = Cluster.start ~s ~tol () in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown cluster)
    (fun () -> Session.run ?kill_at ~rt_timeout ~register ~cluster spec)

let test_live_ls97_atomic () =
  let res =
    run_live ~register:Registry.abd_mwmr ~s:3 ~tol:1
      {
        Session.default_spec with
        writers = 2;
        readers = 2;
        writes_per_writer = 15;
        reads_per_reader = 25;
      }
  in
  check bool "history atomic" true (atomic res.Session.history);
  check int "no client starved" 0 res.Session.unavailable;
  check bool "writes take two rounds" true (res.Session.write_rounds = 2.0);
  check bool "reads take two rounds" true (res.Session.read_rounds = 2.0)

let test_live_w2r1_fast_read () =
  (* S=5 t=1 R=2: inside the R < S/t − 2 regime, so W2R1 must be atomic
     with strictly one-round reads — the paper's headline, on sockets. *)
  let res =
    run_live ~register:Registry.fastread_w2r1 ~s:5 ~tol:1
      {
        Session.default_spec with
        writers = 2;
        readers = 2;
        writes_per_writer = 15;
        reads_per_reader = 25;
      }
  in
  check bool "history atomic" true (atomic res.Session.history);
  check bool "writes take two rounds" true (res.Session.write_rounds = 2.0);
  check bool "reads are one round" true (res.Session.read_rounds = 1.0)

let test_live_single_writer_guard () =
  let cluster = Cluster.start ~s:3 ~tol:1 () in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown cluster)
    (fun () ->
      check bool "SWMR rejects two writers" true
        (match
           Session.run ~register:Registry.abd_swmr ~cluster
             { Session.default_spec with writers = 2 }
         with
        | _ -> false
        | exception Invalid_argument _ -> true))

let test_live_survives_t_kills () =
  (* S=5 t=2: kill two real server processes mid-run.  The remaining
     quorum of 3 must keep completing operations and the history must
     still be atomic — the acceptance bar for the live transport. *)
  let res =
    run_live
      ~kill_at:[ (0.02, 0); (0.05, 3) ]
      ~register:Registry.abd_mwmr ~s:5 ~tol:2
      {
        Session.writers = 2;
        readers = 2;
        writes_per_writer = 20;
        reads_per_reader = 30;
        write_think = 0.004;
        read_think = 0.003;
      }
  in
  check (Alcotest.list int) "both targets down" [ 0; 3 ] res.Session.killed;
  check int "no client starved" 0 res.Session.unavailable;
  check bool "history atomic across the kills" true (atomic res.Session.history);
  check bool "all writes completed" true
    (List.for_all Histories.Op.is_complete
       (Histories.History.ops res.Session.history))

let test_live_adaptive_atomic () =
  (* The adaptive register beyond the fast-read threshold, on sockets. *)
  let res =
    run_live ~register:Registry.adaptive ~s:3 ~tol:1
      {
        Session.default_spec with
        writers = 2;
        readers = 3;
        writes_per_writer = 10;
        reads_per_reader = 15;
      }
  in
  check bool "history atomic" true (atomic res.Session.history);
  check int "no client starved" 0 res.Session.unavailable

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "transport"
    [
      ( "codec",
        [
          Alcotest.test_case "sample round trips" `Quick
            test_codec_roundtrip_samples;
          Alcotest.test_case "large vectors" `Quick test_codec_large_vector;
          Alcotest.test_case "rejects truncation" `Quick
            test_codec_rejects_truncation;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          QCheck_alcotest.to_alcotest codec_roundtrip_prop;
          QCheck_alcotest.to_alcotest codec_prefix_prop;
        ] );
      ( "stream",
        [
          Alcotest.test_case "byte at a time" `Quick test_stream_byte_at_a_time;
          Alcotest.test_case "mixed chunks" `Quick test_stream_mixed_chunks;
        ] );
      ( "server",
        [
          Alcotest.test_case "round trips" `Quick test_server_roundtrip;
          Alcotest.test_case "survives garbage peers" `Quick
            test_server_survives_garbage;
        ] );
      ( "live",
        [
          Alcotest.test_case "LS97 atomic on sockets" `Quick
            test_live_ls97_atomic;
          Alcotest.test_case "W2R1 one-round reads" `Quick
            test_live_w2r1_fast_read;
          Alcotest.test_case "single-writer guard" `Quick
            test_live_single_writer_guard;
          Alcotest.test_case "survives t kills" `Quick
            test_live_survives_t_kills;
          Alcotest.test_case "adaptive atomic on sockets" `Quick
            test_live_adaptive_atomic;
        ] );
    ]
