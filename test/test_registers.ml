(* Tests for the register protocols: the replica (Algorithm 2), the
   admissible predicate, and the behaviour of each protocol under both
   benign and adversarial schedules. *)

open Protocol
open Registers

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let tag ts wid = { Tstamp.ts; wid }
let value ts wid payload = { Wire.tag = tag ts wid; payload }

(* ------------------------------------------------------------------ *)
(* Tstamp                                                               *)
(* ------------------------------------------------------------------ *)

let test_tstamp_order () =
  check bool "ts dominates" true (Tstamp.compare (tag 1 9) (tag 2 0) < 0);
  check bool "wid breaks ties" true (Tstamp.compare (tag 2 0) (tag 2 1) < 0);
  check bool "initial smallest" true
    (Tstamp.compare Tstamp.initial (tag 0 0) < 0);
  check bool "max" true (Tstamp.equal (Tstamp.max (tag 1 0) (tag 1 1)) (tag 1 1));
  check bool "next" true (Tstamp.equal (Tstamp.next (tag 3 7) ~wid:2) (tag 4 2))

(* ------------------------------------------------------------------ *)
(* Replica (Algorithm 2)                                                *)
(* ------------------------------------------------------------------ *)

let test_replica_update_monotone () =
  let rep = Replica.create () in
  ignore (Replica.handle rep ~client:10 (Wire.Update (value 1 0 101)));
  check bool "current is v1" true
    (Tstamp.equal (Replica.current rep).Wire.tag (tag 1 0));
  ignore (Replica.handle rep ~client:11 (Wire.Update (value 3 1 103)));
  ignore (Replica.handle rep ~client:12 (Wire.Update (value 2 0 102)));
  check bool "older update does not regress current" true
    (Tstamp.equal (Replica.current rep).Wire.tag (tag 3 1));
  check int "all values retained" 4 (Replica.vector_size rep)

let test_replica_updated_sets () =
  let rep = Replica.create () in
  ignore (Replica.handle rep ~client:10 (Wire.Update (value 1 0 101)));
  ignore (Replica.handle rep ~client:11 (Wire.Update (value 1 0 101)));
  check (Alcotest.list int) "both updaters recorded" [ 10; 11 ]
    (Replica.updated_set rep (value 1 0 101))

let test_replica_query_folds_queue () =
  let rep = Replica.create () in
  let rep_ack = Replica.handle rep ~client:20 (Wire.Query [ value 2 1 102 ]) in
  (match rep_ack with
  | Wire.Read_ack { current; vector } ->
    check bool "queued value became current" true
      (Tstamp.equal current.Wire.tag (tag 2 1));
    check bool "vector carries it" true
      (List.exists (fun (v, _) -> Tstamp.equal v.Wire.tag (tag 2 1)) vector)
  | Wire.Write_ack _ -> Alcotest.fail "expected read ack");
  check (Alcotest.list int) "client enrolled" [ 20 ]
    (Replica.updated_set rep (value 2 1 102))

let test_replica_enrolls_reader_in_current () =
  (* The Lemma-8 rule: replying to a query adds the client to the
     *current* value's updated set even when the client didn't carry it. *)
  let rep = Replica.create () in
  ignore (Replica.handle rep ~client:10 (Wire.Update (value 1 0 101)));
  ignore (Replica.handle rep ~client:33 (Wire.Query []));
  check (Alcotest.list int) "reader enrolled in current" [ 10; 33 ]
    (Replica.updated_set rep (value 1 0 101))

let test_replica_initial_state () =
  let rep = Replica.create () in
  check bool "initial current" true
    (Tstamp.equal (Replica.current rep).Wire.tag Tstamp.initial);
  check int "initial vector" 1 (Replica.vector_size rep)

let test_replica_vector_pruned () =
  (* The valuevector is a recency window: past [max_vector] entries the
     smallest tags are evicted, and [current] (the largest) survives. *)
  let rep = Replica.create () in
  let n = Replica.max_vector + 10 in
  for ts = 1 to n do
    ignore (Replica.handle rep ~client:0 (Wire.Update (value ts 0 (100 + ts))))
  done;
  check int "window size" Replica.max_vector (Replica.vector_size rep);
  check bool "current retained" true
    (Tstamp.equal (Replica.current rep).Wire.tag (tag n 0));
  check (Alcotest.list int) "oldest evicted" []
    (Replica.updated_set rep (value 1 0 101));
  (* A pruned value a client still tracks is resurrected for the reply
     that echoes it — with the client enrolled — before the window is
     re-enforced (the certificate regeneration the bound relies on). *)
  match Replica.handle rep ~client:7 (Wire.Query [ value 1 0 101 ]) with
  | Wire.Read_ack { vector; _ } ->
    let _, updated =
      List.find (fun (v, _) -> Tstamp.equal v.Wire.tag (tag 1 0)) vector
    in
    check bool "echoed value certified in reply" true (List.mem 7 updated);
    check bool "window re-enforced after reply" true
      (Replica.vector_size rep <= Replica.max_vector)
  | Wire.Write_ack _ -> Alcotest.fail "expected read ack"

let test_replica_wire_updated_truncated () =
  (* READACKs carry at most [max_wire_updated] ids per entry, and the
     querying client is always among them; the replica's own set stays
     complete (recovery and the lemma tests need it). *)
  let rep = Replica.create () in
  let n = Replica.max_wire_updated + 20 in
  for c = 1 to n do
    ignore (Replica.handle rep ~client:c (Wire.Update (value 1 0 101)))
  done;
  let querier = n + 5 in
  (match Replica.handle rep ~client:querier (Wire.Query []) with
  | Wire.Read_ack { vector; _ } ->
    let _, updated =
      List.find (fun (v, _) -> Tstamp.equal v.Wire.tag (tag 1 0)) vector
    in
    check bool "wire set capped" true
      (List.length updated <= Replica.max_wire_updated);
    check bool "querier included" true (List.mem querier updated)
  | Wire.Write_ack _ -> Alcotest.fail "expected read ack");
  check int "replica set complete" (n + 1)
    (List.length (Replica.updated_set rep (value 1 0 101)))

let test_bound_queue () =
  let vs = List.init (Client_core.max_queue + 9) (fun i -> value (i + 1) 0 i) in
  let q = Client_core.bound_queue vs in
  check int "queue capped" Client_core.max_queue (List.length q);
  (match q with
  | hd :: _ ->
    check bool "largest first" true
      (Tstamp.equal hd.Wire.tag (tag (Client_core.max_queue + 9) 0))
  | [] -> Alcotest.fail "empty queue");
  check bool "descending" true
    (List.for_all2
       (fun (a : Wire.value) b -> Wire.compare_value a b > 0)
       (List.filteri (fun i _ -> i < List.length q - 1) q)
       (List.tl q))

(* ------------------------------------------------------------------ *)
(* The admissible predicate                                             *)
(* ------------------------------------------------------------------ *)

(* Build a READACK reply carrying [vector] entries (value, updated). *)
let ack server entries =
  let current =
    List.fold_left
      (fun acc (v, _) -> Wire.value_max acc v)
      Wire.initial_value_entry entries
  in
  (server, Wire.Read_ack { current; vector = entries })

let v1 = value 1 0 101

let test_admissible_degree1 () =
  (* All S−t = 4 replies carry v1 with a common updater: degree 1. *)
  let replies = List.init 4 (fun s -> ack s [ (v1, [ 10 ]) ]) in
  check bool "admissible a=1" true
    (Client_core.admissible ~s:5 ~t:1 ~value:v1 ~replies ~degree:1)

let test_admissible_needs_enough_messages () =
  let replies = [ ack 0 [ (v1, [ 10 ]) ]; ack 1 []; ack 2 []; ack 3 [] ] in
  check bool "one message is not S-t" false
    (Client_core.admissible ~s:5 ~t:1 ~value:v1 ~replies ~degree:1)

let test_admissible_needs_common_updaters () =
  (* Four messages with v1 but disjoint updated sets: no client is
     common to any large-enough subset, at any degree. *)
  let replies = List.init 4 (fun s -> ack s [ (v1, [ 10 + s ]) ]) in
  check bool "no common client at degree 1" false
    (Client_core.admissible ~s:5 ~t:1 ~value:v1 ~replies ~degree:1);
  check bool "no common pair at degree 2" false
    (Client_core.admissible ~s:5 ~t:1 ~value:v1 ~replies ~degree:2);
  (* Adding one shared client fixes degree 1. *)
  let shared = List.init 4 (fun s -> ack s [ (v1, [ 10 + s; 99 ]) ]) in
  check bool "shared client admissible" true
    (Client_core.admissible ~s:5 ~t:1 ~value:v1 ~replies:shared ~degree:1)

let test_admissible_subset_choice () =
  (* Degree 2 allows dropping t messages: 3 of 4 messages share {10,11}. *)
  let replies =
    [
      ack 0 [ (v1, [ 10; 11 ]) ];
      ack 1 [ (v1, [ 10; 11 ]) ];
      ack 2 [ (v1, [ 10; 11 ]) ];
      ack 3 [ (v1, [ 12 ]) ];
    ]
  in
  check bool "subset with shared pair" true
    (Client_core.admissible ~s:5 ~t:1 ~value:v1 ~replies ~degree:2)

let test_admissible_degenerate_regime () =
  (* S − a·t <= 0: vacuously admissible — the unsafe-regime behaviour the
     threshold experiment relies on. *)
  check bool "degenerate true" true
    (Client_core.admissible ~s:4 ~t:2 ~value:v1 ~replies:[] ~degree:2)

let test_admissible_exact_threshold () =
  (* S=4, t=1: degree 3 needs only 1 message but 3 common updaters. *)
  let replies = [ ack 0 [ (v1, [ 10; 11; 12 ]) ] ] in
  check bool "one block server, 3 updaters, degree 3" true
    (Client_core.admissible ~s:4 ~t:1 ~value:v1 ~replies ~degree:3);
  let replies' = [ ack 0 [ (v1, [ 10; 11 ]) ] ] in
  check bool "only 2 updaters fails" false
    (Client_core.admissible ~s:4 ~t:1 ~value:v1 ~replies:replies' ~degree:3)

(* ------------------------------------------------------------------ *)
(* Protocol runs                                                        *)
(* ------------------------------------------------------------------ *)

let mixed_plans =
  [
    Runtime.write_plan ~writer:0 ~think:15.0 4;
    Runtime.write_plan ~writer:1 ~start_at:4.0 ~think:21.0 4;
    Runtime.read_plan ~reader:0 ~start_at:1.0 ~think:9.0 8;
    Runtime.read_plan ~reader:1 ~start_at:2.0 ~think:13.0 8;
  ]

let run_register ?(s = 5) ?(t = 1) ?(w = 2) ?(r = 2) ?(seed = 1) ?adversary
    ?(plans = mixed_plans) register =
  let env =
    Env.make ~seed ~latency:(Simulation.Latency.uniform ~lo:1.0 ~hi:8.0) ~s ~t
      ~w ~r ()
  in
  Runtime.run ~register ~env ~plans ?adversary ()

let assert_atomic_run name out =
  let h = out.Runtime.history in
  check bool (name ^ ": well-formed") true (Histories.History.well_formed h = Ok ());
  check bool (name ^ ": wait-free") true
    (List.for_all Histories.Op.is_complete (Histories.History.ops h));
  (match Checker.Atomicity.check h with
  | Ok () -> ()
  | Error w -> Alcotest.failf "%s: atomicity violated: %s" name (Checker.Witness.to_string w));
  match Checker.Mw_properties.check_ok out.Runtime.tagged with
  | Ok () -> ()
  | Error w -> Alcotest.failf "%s: MWA violated: %s" name (Checker.Witness.to_string w)

let test_abd_mwmr_atomic () =
  for seed = 1 to 10 do
    assert_atomic_run "LS97" (run_register ~seed Registry.abd_mwmr)
  done

let test_fastread_atomic_safe_regime () =
  (* S=5, t=1, R=2 < S/t − 2 = 3: proven-correct regime. *)
  for seed = 1 to 10 do
    assert_atomic_run "W2R1" (run_register ~seed Registry.fastread_w2r1)
  done

let test_abd_swmr_atomic () =
  let plans =
    [
      Runtime.write_plan ~writer:0 ~think:10.0 6;
      Runtime.read_plan ~reader:0 ~start_at:1.0 ~think:7.0 8;
      Runtime.read_plan ~reader:1 ~start_at:2.0 ~think:11.0 8;
    ]
  in
  for seed = 1 to 10 do
    assert_atomic_run "ABD-SW" (run_register ~seed ~w:1 ~plans Registry.abd_swmr)
  done

let test_dglv_atomic_safe_regime () =
  let plans =
    [
      Runtime.write_plan ~writer:0 ~think:10.0 6;
      Runtime.read_plan ~reader:0 ~start_at:1.0 ~think:7.0 8;
      Runtime.read_plan ~reader:1 ~start_at:2.0 ~think:11.0 8;
    ]
  in
  (* S=6, t=1, R=2 < 4: DGLV's safe regime. *)
  for seed = 1 to 10 do
    assert_atomic_run "DGLV" (run_register ~seed ~s:6 ~w:1 ~plans Registry.dglv_w1r1)
  done

let test_single_writer_protocols_reject_multi () =
  check bool "abd_swmr rejects" true
    (try ignore (run_register ~w:2 Registry.abd_swmr); false
     with Invalid_argument _ -> true);
  check bool "dglv rejects" true
    (try ignore (run_register ~w:2 Registry.dglv_w1r1); false
     with Invalid_argument _ -> true)

(* The deterministic writer-inversion schedule: the higher-id writer
   writes first; a naive fast write gives the later write a smaller
   timestamp, and the read then returns stale data. *)
let inversion_plans =
  [
    Runtime.write_plan ~writer:1 ~start_at:0.0 1;
    Runtime.write_plan ~writer:0 ~start_at:100.0 1;
    Runtime.read_plan ~reader:0 ~start_at:200.0 1;
  ]

let test_naive_w1r2_violates () =
  let out = run_register ~plans:inversion_plans Registry.naive_w1r2 in
  check bool "naive fast write not atomic" false
    (Checker.Atomicity.is_atomic out.Runtime.history);
  (match Checker.Atomicity.check out.Runtime.history with
  | Error w -> check Alcotest.string "stale read" "stale-read" (Checker.Witness.short w)
  | Ok () -> Alcotest.fail "expected violation");
  let report = Checker.Mw_properties.check out.Runtime.tagged in
  check bool "MWA0 violated too" true (report.Checker.Mw_properties.mwa0 <> None)

let test_naive_w1r1_violates () =
  let out = run_register ~plans:inversion_plans Registry.naive_w1r1 in
  check bool "naive W1R1 not atomic" false
    (Checker.Atomicity.is_atomic out.Runtime.history)

let test_slow_protocols_survive_inversion_schedule () =
  assert_atomic_run "LS97 inversion"
    (run_register ~plans:inversion_plans Registry.abd_mwmr);
  assert_atomic_run "W2R1 inversion"
    (run_register ~plans:inversion_plans Registry.fastread_w2r1)

let test_atomic_under_crash () =
  let adversary ctl engine =
    Simulation.Engine.schedule_at engine ~time:30.0 (fun () ->
        ctl.Control.crash_server 2)
  in
  for seed = 1 to 5 do
    assert_atomic_run "LS97 + crash"
      (run_register ~seed ~adversary Registry.abd_mwmr);
    assert_atomic_run "W2R1 + crash"
      (run_register ~seed ~adversary Registry.fastread_w2r1)
  done

let test_registry () =
  check int "eight protocols" 8 (List.length Registry.all);
  check int "four multi-writer" 4 (List.length Registry.multi_writer);
  check bool "find by substring" true
    (match Registry.find "ls97" with
    | Some r -> Registry.name r = Registry.name Registry.abd_mwmr
    | None -> false);
  check bool "find missing" true (Registry.find "zzz-nothing" = None);
  List.iter
    (fun r ->
      let dp = Registry.design_point r in
      check bool (Registry.name r ^ " has a design point") true
        (List.mem dp Quorums.Bounds.all_design_points))
    Registry.all

let test_design_points () =
  check bool "abd_mwmr W2R2" true
    (Registry.design_point Registry.abd_mwmr = Quorums.Bounds.W2R2);
  check bool "fastread W2R1" true
    (Registry.design_point Registry.fastread_w2r1 = Quorums.Bounds.W2R1);
  check bool "naive_w1r2 W1R2" true
    (Registry.design_point Registry.naive_w1r2 = Quorums.Bounds.W1R2);
  check bool "dglv W1R1" true
    (Registry.design_point Registry.dglv_w1r1 = Quorums.Bounds.W1R1)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "registers"
    [
      ("tstamp", [ tc "lexicographic order" test_tstamp_order ]);
      ( "replica",
        [
          tc "update monotone" test_replica_update_monotone;
          tc "updated sets" test_replica_updated_sets;
          tc "query folds queue" test_replica_query_folds_queue;
          tc "enrolls reader in current" test_replica_enrolls_reader_in_current;
          tc "initial state" test_replica_initial_state;
          tc "vector pruned to window" test_replica_vector_pruned;
          tc "wire updated sets truncated" test_replica_wire_updated_truncated;
          tc "valQueue bounded" test_bound_queue;
        ] );
      ( "admissible",
        [
          tc "degree 1" test_admissible_degree1;
          tc "needs messages" test_admissible_needs_enough_messages;
          tc "needs common updaters" test_admissible_needs_common_updaters;
          tc "subset choice" test_admissible_subset_choice;
          tc "degenerate regime" test_admissible_degenerate_regime;
          tc "exact threshold" test_admissible_exact_threshold;
        ] );
      ( "protocols",
        [
          tc "LS97 atomic" test_abd_mwmr_atomic;
          tc "W2R1 atomic in safe regime" test_fastread_atomic_safe_regime;
          tc "ABD-SW atomic" test_abd_swmr_atomic;
          tc "DGLV atomic in safe regime" test_dglv_atomic_safe_regime;
          tc "single-writer guards" test_single_writer_protocols_reject_multi;
          tc "naive W1R2 violates" test_naive_w1r2_violates;
          tc "naive W1R1 violates" test_naive_w1r1_violates;
          tc "slow protocols survive inversion" test_slow_protocols_survive_inversion_schedule;
          tc "atomic under crash" test_atomic_under_crash;
          tc "registry" test_registry;
          tc "design points" test_design_points;
        ] );
    ]
