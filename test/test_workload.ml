(* Tests for statistics, adversaries, and the fast-read threshold
   experiment (Fig. 9). *)

open Protocol
open Workload

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

(* The histogram trades exact percentiles for constant memory; its
   advertised contract is count/sum/min/max exact and percentiles
   within the bin's relative error of the exact order statistic. *)
let hist_of lats =
  let h = Stats.Hist.create () in
  List.iter (Stats.Hist.add h) lats;
  h

let rel_close a b =
  (* half bin-width each side: 10^(1/64) covers midpoint-vs-edge *)
  a = b || abs_float (a -. b) <= 0.037 *. Float.max (abs_float a) (abs_float b)

let check_hist_close name lats =
  let exact = Stats.of_latencies lats in
  let s = Stats.Hist.summary (hist_of lats) in
  check int (name ^ ": count") exact.Stats.count s.Stats.count;
  check bool (name ^ ": min") true (s.Stats.min = exact.Stats.min);
  check bool (name ^ ": max") true (s.Stats.max = exact.Stats.max);
  check bool (name ^ ": mean") true (rel_close s.Stats.mean exact.Stats.mean);
  check bool (name ^ ": p50") true (rel_close s.Stats.p50 exact.Stats.p50);
  check bool (name ^ ": p95") true (rel_close s.Stats.p95 exact.Stats.p95);
  check bool (name ^ ": p99") true (rel_close s.Stats.p99 exact.Stats.p99)

let test_hist_matches_exact () =
  check_hist_close "uniform ms" (List.init 1000 (fun i -> 0.0001 *. float_of_int (i + 1)));
  check_hist_close "singleton" [ 0.0042 ];
  (* heavy tail spanning five decades *)
  check_hist_close "decades"
    (List.init 500 (fun i -> 1e-5 *. (1.2 ** float_of_int (i mod 60))));
  check int "empty count" 0 (Stats.Hist.summary (Stats.Hist.create ())).Stats.count

let test_hist_out_of_range () =
  (* Below-range and above-range samples land in the edge bins but
     keep min/max exact. *)
  let s = Stats.Hist.summary (hist_of [ 1e-9; 5e-9; 2e4 ]) in
  check int "count" 3 s.Stats.count;
  check bool "min exact" true (s.Stats.min = 1e-9);
  check bool "max exact" true (s.Stats.max = 2e4);
  check bool "p50 clamped into range" true
    (s.Stats.p50 >= 1e-9 && s.Stats.p50 <= 2e4)

let test_hist_merge () =
  let a = hist_of (List.init 400 (fun i -> 0.001 *. float_of_int (i + 1))) in
  let b = hist_of (List.init 600 (fun i -> 0.001 *. float_of_int (i + 401))) in
  Stats.Hist.merge ~into:a b;
  let whole = List.init 1000 (fun i -> 0.001 *. float_of_int (i + 1)) in
  let exact = Stats.of_latencies whole in
  let s = Stats.Hist.summary a in
  check int "merged count" 1000 (Stats.Hist.count a);
  check bool "merged min/max" true
    (s.Stats.min = exact.Stats.min && s.Stats.max = exact.Stats.max);
  check bool "merged p95" true (rel_close s.Stats.p95 exact.Stats.p95)

let lat_list_arb =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map string_of_float l))
    QCheck.Gen.(
      list_size (1 -- 200)
        (map (fun f -> 1e-6 +. (f *. 10.0)) (float_bound_exclusive 1.0)))

let hist_summary_close_prop =
  QCheck.Test.make ~count:500 ~name:"hist percentiles track exact stats"
    lat_list_arb
    (fun lats ->
      let exact = Stats.of_latencies lats in
      let s = Stats.Hist.summary (hist_of lats) in
      s.Stats.count = exact.Stats.count
      && s.Stats.min = exact.Stats.min
      && s.Stats.max = exact.Stats.max
      && rel_close s.Stats.p50 exact.Stats.p50
      && rel_close s.Stats.p95 exact.Stats.p95
      && rel_close s.Stats.p99 exact.Stats.p99)

let test_stats_empty () =
  let s = Stats.of_latencies [] in
  check int "count" 0 s.Stats.count

let test_stats_percentiles () =
  let s = Stats.of_latencies (List.init 100 (fun i -> float_of_int (i + 1))) in
  check int "count" 100 s.Stats.count;
  check bool "mean" true (abs_float (s.Stats.mean -. 50.5) < 0.01);
  check bool "p50" true (s.Stats.p50 = 50.0);
  check bool "p95" true (s.Stats.p95 = 95.0);
  check bool "p99" true (s.Stats.p99 = 99.0);
  check bool "min/max" true (s.Stats.min = 1.0 && s.Stats.max = 100.0)

let test_stats_singleton () =
  let s = Stats.of_latencies [ 7.0 ] in
  check bool "all seven" true
    (s.Stats.mean = 7.0 && s.Stats.p50 = 7.0 && s.Stats.p99 = 7.0)

let test_stats_unsorted_input () =
  (* of_latencies must sort; history traversal order is arbitrary. *)
  let shuffled = [ 30.0; 10.0; 50.0; 20.0; 40.0 ] in
  let s = Stats.of_latencies shuffled in
  check bool "p50 is the median" true (s.Stats.p50 = 30.0);
  check bool "min/max" true (s.Stats.min = 10.0 && s.Stats.max = 50.0)

let test_stats_small_n_tail () =
  (* With few samples the tail percentiles collapse onto the max, never
     past it. *)
  let s = Stats.of_latencies [ 1.0; 2.0 ] in
  check bool "p95 = max" true (s.Stats.p95 = 2.0);
  check bool "p99 = max" true (s.Stats.p99 = 2.0);
  check bool "p50 = first" true (s.Stats.p50 = 1.0)

let test_stats_from_history () =
  let env = Env.make ~seed:1 ~latency:(Simulation.Latency.constant 2.0) ~s:3 ~t:1 ~w:1 ~r:1 () in
  let plans =
    [ Runtime.write_plan ~writer:0 ~think:50.0 3;
      Runtime.read_plan ~reader:0 ~start_at:200.0 ~think:50.0 3 ]
  in
  let out = Runtime.run ~register:Registers.Registry.abd_mwmr ~env ~plans () in
  let writes = Stats.writes out.Runtime.history in
  let reads = Stats.reads out.Runtime.history in
  check int "3 writes" 3 writes.Stats.count;
  check int "3 reads" 3 reads.Stats.count;
  (* Constant latency 2.0: every two-round op takes exactly 8. *)
  check bool "write latency = 2 RTTs" true (abs_float (writes.Stats.mean -. 8.0) < 0.001);
  check bool "read latency = 2 RTTs" true (abs_float (reads.Stats.mean -. 8.0) < 0.001)

let test_one_round_latency_halved () =
  (* The paper's motivation measured: fast reads take one RTT. *)
  let env = Env.make ~seed:1 ~latency:(Simulation.Latency.constant 2.0) ~s:6 ~t:1 ~w:1 ~r:1 () in
  let plans =
    [ Runtime.write_plan ~writer:0 1;
      Runtime.read_plan ~reader:0 ~start_at:100.0 ~think:10.0 4 ]
  in
  let out = Runtime.run ~register:Registers.Registry.fastread_w2r1 ~env ~plans () in
  let reads = Stats.reads out.Runtime.history in
  check bool "fast read = 1 RTT" true (abs_float (reads.Stats.mean -. 4.0) < 0.001)

(* ------------------------------------------------------------------ *)
(* Adversaries                                                          *)
(* ------------------------------------------------------------------ *)

let run_with ?(s = 5) ?(t = 1) ?(w = 2) ?(r = 2) ?(seed = 3) adversary plans =
  let env = Env.make ~seed ~s ~t ~w ~r () in
  Runtime.run ~register:Registers.Registry.abd_mwmr ~env ~plans
    ~adversary:(Adversary.apply adversary) ()

let standard_plans =
  [ Runtime.write_plan ~writer:0 ~think:10.0 4;
    Runtime.write_plan ~writer:1 ~start_at:2.0 ~think:12.0 4;
    Runtime.read_plan ~reader:0 ~start_at:1.0 ~think:8.0 6;
    Runtime.read_plan ~reader:1 ~start_at:3.0 ~think:9.0 6 ]

let all_complete out =
  List.for_all Histories.Op.is_complete (Histories.History.ops out.Runtime.history)

let test_adversary_none () =
  let out = run_with Adversary.none standard_plans in
  check bool "completes" true (all_complete out);
  check bool "atomic" true (Checker.Atomicity.is_atomic out.Runtime.history)

let test_adversary_crash_within_budget () =
  let out = run_with (Adversary.crash_at [ (5.0, 0) ]) standard_plans in
  check bool "wait-free despite crash" true (all_complete out);
  check bool "atomic" true (Checker.Atomicity.is_atomic out.Runtime.history)

let test_adversary_crash_random () =
  let out = run_with (Adversary.crash_random ~seed:9 ~t:1 ~at:5.0 ~s:5) standard_plans in
  check bool "wait-free" true (all_complete out)

let test_adversary_compose () =
  let adv =
    Adversary.compose
      [ Adversary.crash_at [ (5.0, 0) ];
        Adversary.delay_route ~delay:30.0 ~src:5 ~dst:1 ]
  in
  let out = run_with adv standard_plans in
  check bool "composed adversary survivable" true (all_complete out);
  check bool "still atomic" true (Checker.Atomicity.is_atomic out.Runtime.history)

let test_adversary_hold_route () =
  (* Holding one client->server link is within the t=1 budget. *)
  let out = run_with (Adversary.hold_route ~src:5 ~dst:0 ()) standard_plans in
  check bool "completes" true (all_complete out);
  check bool "atomic" true (Checker.Atomicity.is_atomic out.Runtime.history)

let test_random_skips_safe () =
  (* Random within-budget skips never break a correct protocol. *)
  let topology = Protocol.Topology.make ~servers:5 ~writers:2 ~readers:2 in
  for seed = 1 to 8 do
    let adv = Adversary.random_skips ~seed ~topology ~t_budget:1 ~window:25.0 in
    let out = run_with ~seed adv standard_plans in
    check bool (Printf.sprintf "wait-free (seed %d)" seed) true (all_complete out);
    check bool (Printf.sprintf "atomic (seed %d)" seed) true
      (Checker.Atomicity.is_atomic out.Runtime.history)
  done

(* ------------------------------------------------------------------ *)
(* Threshold (Fig. 9)                                                   *)
(* ------------------------------------------------------------------ *)

let test_threshold_boundary_s6_t1 () =
  (* S=6, t=1: fast reads possible iff R < 4. *)
  List.iter
    (fun v ->
      check bool (Format.asprintf "%a" Threshold.pp_verdict v) true
        (Threshold.boundary_matches v))
    (Threshold.sweep ~register:Registers.Registry.fastread_w2r1 ~s:6 ~t:1 ~r_max:7)

let test_threshold_boundary_t2 () =
  List.iter
    (fun (s, t) ->
      List.iter
        (fun v ->
          check bool (Format.asprintf "%a" Threshold.pp_verdict v) true
            (Threshold.boundary_matches v))
        (Threshold.sweep ~register:Registers.Registry.fastread_w2r1 ~s ~t ~r_max:5))
    [ (8, 2); (9, 2); (12, 3) ]

let test_threshold_violation_is_new_old_inversion () =
  let v = Threshold.attack ~register:Registers.Registry.fastread_w2r1 ~s:6 ~t:1 ~r:4 in
  check bool "violated" false v.Threshold.atomic;
  check bool "MWA4 named" true (v.Threshold.mwa_failure = Some "MWA4")

let test_threshold_write_rounds_irrelevant () =
  (* §5.1: the fast-read bound is independent of the write's round count —
     the three-round-write register has exactly the same boundary. *)
  List.iter
    (fun v ->
      check bool (Format.asprintf "W3R1 %a" Threshold.pp_verdict v) true
        (Threshold.boundary_matches v))
    (Threshold.sweep ~register:Registers.Registry.slow_write_w3r1 ~s:6 ~t:1
       ~r_max:6)

let test_threshold_slow_read_immune () =
  (* The same adversary cannot break the W2R2 register at any R: its
     two-round read writes back before returning. *)
  List.iter
    (fun v ->
      check bool
        (Format.asprintf "LS97 immune: %a" Threshold.pp_verdict v)
        true v.Threshold.atomic)
    (Threshold.sweep ~register:Registers.Registry.abd_mwmr ~s:6 ~t:1 ~r_max:7)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "workload"
    [
      ( "stats",
        [
          tc "empty" test_stats_empty;
          tc "percentiles" test_stats_percentiles;
          tc "singleton" test_stats_singleton;
          tc "unsorted input" test_stats_unsorted_input;
          tc "small-n tail" test_stats_small_n_tail;
          tc "from history" test_stats_from_history;
          tc "fast read is one RTT" test_one_round_latency_halved;
          tc "histogram matches exact stats" test_hist_matches_exact;
          tc "histogram edge bins" test_hist_out_of_range;
          tc "histogram merge" test_hist_merge;
          QCheck_alcotest.to_alcotest hist_summary_close_prop;
        ] );
      ( "adversary",
        [
          tc "none" test_adversary_none;
          tc "crash within budget" test_adversary_crash_within_budget;
          tc "crash random" test_adversary_crash_random;
          tc "compose" test_adversary_compose;
          tc "hold route" test_adversary_hold_route;
          tc "random skips safe" test_random_skips_safe;
        ] );
      ( "threshold",
        [
          tc "boundary S=6 t=1" test_threshold_boundary_s6_t1;
          tc "boundary t=2,3" test_threshold_boundary_t2;
          tc "violation is MWA4" test_threshold_violation_is_new_old_inversion;
          tc "write rounds irrelevant (s5.1)" test_threshold_write_rounds_irrelevant;
          tc "slow read immune" test_threshold_slow_read_immune;
        ] );
    ]
