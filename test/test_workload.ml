(* Tests for statistics, adversaries, and the fast-read threshold
   experiment (Fig. 9). *)

open Protocol
open Workload

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let test_stats_empty () =
  let s = Stats.of_latencies [] in
  check int "count" 0 s.Stats.count

let test_stats_percentiles () =
  let s = Stats.of_latencies (List.init 100 (fun i -> float_of_int (i + 1))) in
  check int "count" 100 s.Stats.count;
  check bool "mean" true (abs_float (s.Stats.mean -. 50.5) < 0.01);
  check bool "p50" true (s.Stats.p50 = 50.0);
  check bool "p95" true (s.Stats.p95 = 95.0);
  check bool "p99" true (s.Stats.p99 = 99.0);
  check bool "min/max" true (s.Stats.min = 1.0 && s.Stats.max = 100.0)

let test_stats_singleton () =
  let s = Stats.of_latencies [ 7.0 ] in
  check bool "all seven" true
    (s.Stats.mean = 7.0 && s.Stats.p50 = 7.0 && s.Stats.p99 = 7.0)

let test_stats_unsorted_input () =
  (* of_latencies must sort; history traversal order is arbitrary. *)
  let shuffled = [ 30.0; 10.0; 50.0; 20.0; 40.0 ] in
  let s = Stats.of_latencies shuffled in
  check bool "p50 is the median" true (s.Stats.p50 = 30.0);
  check bool "min/max" true (s.Stats.min = 10.0 && s.Stats.max = 50.0)

let test_stats_small_n_tail () =
  (* With few samples the tail percentiles collapse onto the max, never
     past it. *)
  let s = Stats.of_latencies [ 1.0; 2.0 ] in
  check bool "p95 = max" true (s.Stats.p95 = 2.0);
  check bool "p99 = max" true (s.Stats.p99 = 2.0);
  check bool "p50 = first" true (s.Stats.p50 = 1.0)

let test_stats_from_history () =
  let env = Env.make ~seed:1 ~latency:(Simulation.Latency.constant 2.0) ~s:3 ~t:1 ~w:1 ~r:1 () in
  let plans =
    [ Runtime.write_plan ~writer:0 ~think:50.0 3;
      Runtime.read_plan ~reader:0 ~start_at:200.0 ~think:50.0 3 ]
  in
  let out = Runtime.run ~register:Registers.Registry.abd_mwmr ~env ~plans () in
  let writes = Stats.writes out.Runtime.history in
  let reads = Stats.reads out.Runtime.history in
  check int "3 writes" 3 writes.Stats.count;
  check int "3 reads" 3 reads.Stats.count;
  (* Constant latency 2.0: every two-round op takes exactly 8. *)
  check bool "write latency = 2 RTTs" true (abs_float (writes.Stats.mean -. 8.0) < 0.001);
  check bool "read latency = 2 RTTs" true (abs_float (reads.Stats.mean -. 8.0) < 0.001)

let test_one_round_latency_halved () =
  (* The paper's motivation measured: fast reads take one RTT. *)
  let env = Env.make ~seed:1 ~latency:(Simulation.Latency.constant 2.0) ~s:6 ~t:1 ~w:1 ~r:1 () in
  let plans =
    [ Runtime.write_plan ~writer:0 1;
      Runtime.read_plan ~reader:0 ~start_at:100.0 ~think:10.0 4 ]
  in
  let out = Runtime.run ~register:Registers.Registry.fastread_w2r1 ~env ~plans () in
  let reads = Stats.reads out.Runtime.history in
  check bool "fast read = 1 RTT" true (abs_float (reads.Stats.mean -. 4.0) < 0.001)

(* ------------------------------------------------------------------ *)
(* Adversaries                                                          *)
(* ------------------------------------------------------------------ *)

let run_with ?(s = 5) ?(t = 1) ?(w = 2) ?(r = 2) ?(seed = 3) adversary plans =
  let env = Env.make ~seed ~s ~t ~w ~r () in
  Runtime.run ~register:Registers.Registry.abd_mwmr ~env ~plans
    ~adversary:(Adversary.apply adversary) ()

let standard_plans =
  [ Runtime.write_plan ~writer:0 ~think:10.0 4;
    Runtime.write_plan ~writer:1 ~start_at:2.0 ~think:12.0 4;
    Runtime.read_plan ~reader:0 ~start_at:1.0 ~think:8.0 6;
    Runtime.read_plan ~reader:1 ~start_at:3.0 ~think:9.0 6 ]

let all_complete out =
  List.for_all Histories.Op.is_complete (Histories.History.ops out.Runtime.history)

let test_adversary_none () =
  let out = run_with Adversary.none standard_plans in
  check bool "completes" true (all_complete out);
  check bool "atomic" true (Checker.Atomicity.is_atomic out.Runtime.history)

let test_adversary_crash_within_budget () =
  let out = run_with (Adversary.crash_at [ (5.0, 0) ]) standard_plans in
  check bool "wait-free despite crash" true (all_complete out);
  check bool "atomic" true (Checker.Atomicity.is_atomic out.Runtime.history)

let test_adversary_crash_random () =
  let out = run_with (Adversary.crash_random ~seed:9 ~t:1 ~at:5.0 ~s:5) standard_plans in
  check bool "wait-free" true (all_complete out)

let test_adversary_compose () =
  let adv =
    Adversary.compose
      [ Adversary.crash_at [ (5.0, 0) ];
        Adversary.delay_route ~delay:30.0 ~src:5 ~dst:1 ]
  in
  let out = run_with adv standard_plans in
  check bool "composed adversary survivable" true (all_complete out);
  check bool "still atomic" true (Checker.Atomicity.is_atomic out.Runtime.history)

let test_adversary_hold_route () =
  (* Holding one client->server link is within the t=1 budget. *)
  let out = run_with (Adversary.hold_route ~src:5 ~dst:0 ()) standard_plans in
  check bool "completes" true (all_complete out);
  check bool "atomic" true (Checker.Atomicity.is_atomic out.Runtime.history)

let test_random_skips_safe () =
  (* Random within-budget skips never break a correct protocol. *)
  let topology = Protocol.Topology.make ~servers:5 ~writers:2 ~readers:2 in
  for seed = 1 to 8 do
    let adv = Adversary.random_skips ~seed ~topology ~t_budget:1 ~window:25.0 in
    let out = run_with ~seed adv standard_plans in
    check bool (Printf.sprintf "wait-free (seed %d)" seed) true (all_complete out);
    check bool (Printf.sprintf "atomic (seed %d)" seed) true
      (Checker.Atomicity.is_atomic out.Runtime.history)
  done

(* ------------------------------------------------------------------ *)
(* Threshold (Fig. 9)                                                   *)
(* ------------------------------------------------------------------ *)

let test_threshold_boundary_s6_t1 () =
  (* S=6, t=1: fast reads possible iff R < 4. *)
  List.iter
    (fun v ->
      check bool (Format.asprintf "%a" Threshold.pp_verdict v) true
        (Threshold.boundary_matches v))
    (Threshold.sweep ~register:Registers.Registry.fastread_w2r1 ~s:6 ~t:1 ~r_max:7)

let test_threshold_boundary_t2 () =
  List.iter
    (fun (s, t) ->
      List.iter
        (fun v ->
          check bool (Format.asprintf "%a" Threshold.pp_verdict v) true
            (Threshold.boundary_matches v))
        (Threshold.sweep ~register:Registers.Registry.fastread_w2r1 ~s ~t ~r_max:5))
    [ (8, 2); (9, 2); (12, 3) ]

let test_threshold_violation_is_new_old_inversion () =
  let v = Threshold.attack ~register:Registers.Registry.fastread_w2r1 ~s:6 ~t:1 ~r:4 in
  check bool "violated" false v.Threshold.atomic;
  check bool "MWA4 named" true (v.Threshold.mwa_failure = Some "MWA4")

let test_threshold_write_rounds_irrelevant () =
  (* §5.1: the fast-read bound is independent of the write's round count —
     the three-round-write register has exactly the same boundary. *)
  List.iter
    (fun v ->
      check bool (Format.asprintf "W3R1 %a" Threshold.pp_verdict v) true
        (Threshold.boundary_matches v))
    (Threshold.sweep ~register:Registers.Registry.slow_write_w3r1 ~s:6 ~t:1
       ~r_max:6)

let test_threshold_slow_read_immune () =
  (* The same adversary cannot break the W2R2 register at any R: its
     two-round read writes back before returning. *)
  List.iter
    (fun v ->
      check bool
        (Format.asprintf "LS97 immune: %a" Threshold.pp_verdict v)
        true v.Threshold.atomic)
    (Threshold.sweep ~register:Registers.Registry.abd_mwmr ~s:6 ~t:1 ~r_max:7)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "workload"
    [
      ( "stats",
        [
          tc "empty" test_stats_empty;
          tc "percentiles" test_stats_percentiles;
          tc "singleton" test_stats_singleton;
          tc "unsorted input" test_stats_unsorted_input;
          tc "small-n tail" test_stats_small_n_tail;
          tc "from history" test_stats_from_history;
          tc "fast read is one RTT" test_one_round_latency_halved;
        ] );
      ( "adversary",
        [
          tc "none" test_adversary_none;
          tc "crash within budget" test_adversary_crash_within_budget;
          tc "crash random" test_adversary_crash_random;
          tc "compose" test_adversary_compose;
          tc "hold route" test_adversary_hold_route;
          tc "random skips safe" test_random_skips_safe;
        ] );
      ( "threshold",
        [
          tc "boundary S=6 t=1" test_threshold_boundary_s6_t1;
          tc "boundary t=2,3" test_threshold_boundary_t2;
          tc "violation is MWA4" test_threshold_violation_is_new_old_inversion;
          tc "write rounds irrelevant (s5.1)" test_threshold_write_rounds_irrelevant;
          tc "slow read immune" test_threshold_slow_read_immune;
        ] );
    ]
