(* Unit and property tests for the discrete-event substrate. *)

open Simulation

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
  check bool "different seeds differ" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Rng.int rng ~bound:10 in
    check bool "0 <= x < 10" true (x >= 0 && x < 10)
  done

let test_rng_int_in_range () =
  let rng = Rng.create ~seed:2 in
  for _ = 1 to 1000 do
    let x = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    check bool "in range" true (x >= -5 && x <= 5)
  done

let test_rng_float_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Rng.float rng ~bound:2.5 in
    check bool "0 <= x < 2.5" true (x >= 0.0 && x < 2.5)
  done

let test_rng_int_covers_bound () =
  let rng = Rng.create ~seed:4 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng ~bound:5) <- true
  done;
  Array.iteri (fun i b -> check bool (Printf.sprintf "value %d seen" i) true b) seen

let test_rng_split_decorrelated () =
  let a = Rng.create ~seed:9 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 20 (fun _ -> Rng.next_int64 b) in
  check bool "streams differ" true (xs <> ys)

let test_rng_copy_independent () =
  let a = Rng.create ~seed:10 in
  let _ = Rng.next_int64 a in
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.next_int64 a)
    (Rng.next_int64 b)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:11 in
  let arr = Array.init 30 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array int) "still a permutation" (Array.init 30 (fun i -> i)) sorted

let test_rng_exponential_positive () =
  let rng = Rng.create ~seed:12 in
  for _ = 1 to 200 do
    check bool "positive" true (Rng.exponential rng ~mean:5.0 >= 0.0)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  check bool "mean within 10%" true (mean > 3.6 && mean < 4.4)

(* ------------------------------------------------------------------ *)
(* Heap                                                                 *)
(* ------------------------------------------------------------------ *)

let test_heap_basic () =
  let h = Heap.create ~cmp:compare in
  check bool "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  check int "size" 6 (Heap.size h);
  check (Alcotest.option int) "peek" (Some 1) (Heap.peek h);
  let drained = List.init 6 (fun _ -> Option.get (Heap.pop h)) in
  check (Alcotest.list int) "sorted drain" [ 1; 2; 3; 5; 8; 9 ] drained;
  check (Alcotest.option int) "empty pop" None (Heap.pop h)

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  check bool "cleared" true (Heap.is_empty h)

let test_heap_duplicates () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 2; 2; 1; 1 ];
  let drained = List.init 4 (fun _ -> Option.get (Heap.pop h)) in
  check (Alcotest.list int) "dups kept" [ 1; 1; 2; 2 ] drained

let heap_sort_property =
  QCheck.Test.make ~name:"heap drain equals List.sort" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)
(* ------------------------------------------------------------------ *)

let test_engine_runs_in_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e ~time:5.0 (fun () -> log := 5 :: !log);
  Engine.schedule_at e ~time:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule_at e ~time:3.0 (fun () -> log := 3 :: !log);
  Engine.run e;
  check (Alcotest.list int) "time order" [ 1; 3; 5 ] (List.rev !log);
  check bool "clock at last event" true (Engine.now e = 5.0)

let test_engine_fifo_at_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 10 do
    Engine.schedule_at e ~time:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  check (Alcotest.list int) "FIFO ties" (List.init 10 (fun i -> i + 1)) (List.rev !log)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule_at e ~time:2.0 (fun () -> ());
  Engine.run e;
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Engine.schedule_at: time 1 is in the past (now 2)")
    (fun () -> Engine.schedule_at e ~time:1.0 (fun () -> ()))

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e ~time:1.0 (fun () ->
      log := "a" :: !log;
      Engine.schedule e ~delay:1.0 (fun () -> log := "b" :: !log));
  Engine.run e;
  check (Alcotest.list Alcotest.string) "nested" [ "a"; "b" ] (List.rev !log);
  check int "two events" 2 (Engine.processed e)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule_at e ~time:(float_of_int i) (fun () -> incr count)
  done;
  Engine.run ~until:5.0 e;
  check int "only five ran" 5 !count;
  check int "five pending" 5 (Engine.pending e);
  Engine.run e;
  check int "rest ran" 10 !count;
  check bool "quiescent" true (Engine.is_quiescent e)

let test_engine_max_events () =
  let e = Engine.create () in
  for i = 1 to 10 do
    Engine.schedule_at e ~time:(float_of_int i) (fun () -> ())
  done;
  Engine.run ~max_events:3 e;
  check int "three processed" 3 (Engine.processed e)

let test_engine_stop () =
  let e = Engine.create () in
  for i = 1 to 10 do
    Engine.schedule_at e ~time:(float_of_int i) (fun () -> if i = 4 then Engine.stop e)
  done;
  Engine.run e;
  check int "stopped after 4" 4 (Engine.processed e)

let test_engine_negative_delay_clipped () =
  let e = Engine.create () in
  let ran = ref false in
  Engine.schedule e ~delay:(-5.0) (fun () -> ran := true);
  Engine.run e;
  check bool "ran at now" true !ran

(* ------------------------------------------------------------------ *)
(* Latency                                                              *)
(* ------------------------------------------------------------------ *)

let test_latency_constant () =
  let rng = Rng.create ~seed:1 in
  let l = Latency.constant 3.0 in
  check bool "constant" true (Latency.sample l rng ~src:0 ~dst:1 = 3.0)

let test_latency_uniform_range () =
  let rng = Rng.create ~seed:2 in
  let l = Latency.uniform ~lo:2.0 ~hi:4.0 in
  for _ = 1 to 500 do
    let d = Latency.sample l rng ~src:0 ~dst:1 in
    check bool "in [2,4)" true (d >= 2.0 && d < 4.0)
  done

let test_latency_geo () =
  let rng = Rng.create ~seed:3 in
  let l =
    Latency.geo ~region_of:(fun n -> n / 3) ~local:1.0 ~cross:50.0 ~jitter:0.5
  in
  let local = Latency.sample l rng ~src:0 ~dst:1 in
  let cross = Latency.sample l rng ~src:0 ~dst:4 in
  check bool "local fast" true (local < 2.0);
  check bool "cross slow" true (cross >= 50.0)

let test_latency_lognormal_positive () =
  let rng = Rng.create ~seed:4 in
  let l = Latency.lognormal_like ~median:5.0 ~spread:3.0 in
  for _ = 1 to 200 do
    let d = Latency.sample l rng ~src:0 ~dst:1 in
    check bool "within spread" true (d >= 5.0 /. 3.0 && d <= 5.0 *. 3.0)
  done

let test_latency_matrix () =
  (* Full-matrix model with asymmetric (up != down) cross-region links:
     each direction draws from its own row, and every sample stays in
     [delay, delay + jitter). *)
  let delay = [| [| 0.001; 0.030 |]; [| 0.010; 0.001 |] |] in
  let jitter = [| [| 0.0005; 0.003 |]; [| 0.001; 0.0005 |] |] in
  let l =
    Latency.matrix ~name:"updown" ~region_of:(fun n -> n mod 2) ~delay ~jitter
  in
  let rng = Rng.create ~seed:5 in
  let in_band ~src ~dst =
    let a = src mod 2 and b = dst mod 2 in
    let d = Latency.sample l rng ~src ~dst in
    check bool "sample in band" true
      (d >= delay.(a).(b) && d < delay.(a).(b) +. jitter.(a).(b));
    d
  in
  for _ = 1 to 200 do
    let up = in_band ~src:0 ~dst:1 in
    let down = in_band ~src:1 ~dst:0 in
    let local = in_band ~src:0 ~dst:2 in
    check bool "up slower than down" true (up > down);
    check bool "local fastest" true (local < down)
  done;
  check bool "shape mismatch rejected" true
    (match
       Latency.matrix ~name:"bad" ~region_of:(fun n -> n) ~delay
         ~jitter:[| [| 0.0 |] |]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Network                                                              *)
(* ------------------------------------------------------------------ *)

let make_net ?(latency = Latency.constant 1.0) () =
  let e = Engine.create () in
  let net = Network.create e ~latency () in
  (e, net)

let test_network_delivery () =
  let e, net = make_net () in
  let got = ref [] in
  Network.register net ~node:1 (fun env -> got := env.Network.payload :: !got);
  Network.register net ~node:0 (fun _ -> ());
  Network.send net ~src:0 ~dst:1 "hello";
  Network.send net ~src:0 ~dst:1 "world";
  Engine.run e;
  check (Alcotest.list Alcotest.string) "delivered in order" [ "hello"; "world" ]
    (List.rev !got)

let test_network_crash_drops () =
  let e, net = make_net () in
  let got = ref 0 in
  Network.register net ~node:1 (fun _ -> incr got);
  Network.crash net 1;
  Network.send net ~src:0 ~dst:1 ();
  Engine.run e;
  check int "nothing delivered" 0 !got;
  check bool "is_crashed" true (Network.is_crashed net 1);
  check int "one dropped" 1 (Network.stats net).Network.dropped

let test_network_crash_in_flight () =
  let e, net = make_net ~latency:(Latency.constant 10.0) () in
  let got = ref 0 in
  Network.register net ~node:1 (fun _ -> incr got);
  Network.send net ~src:0 ~dst:1 ();
  Engine.schedule_at e ~time:5.0 (fun () -> Network.crash net 1);
  Engine.run e;
  check int "in-flight message dropped at delivery" 0 !got

let test_network_filter_drop_and_delay () =
  let e, net = make_net () in
  let got = ref [] in
  Network.register net ~node:1 (fun env ->
      got := (env.Network.payload, Engine.now e) :: !got);
  Network.set_filter net
    (Some
       (fun env ->
         match env.Network.payload with
         | "drop" -> Network.Drop
         | "slow" -> Network.Delay 50.0
         | _ -> Network.Deliver));
  Network.send net ~src:0 ~dst:1 "drop";
  Network.send net ~src:0 ~dst:1 "slow";
  Network.send net ~src:0 ~dst:1 "fast";
  Engine.run e;
  check int "two delivered" 2 (List.length !got);
  check bool "slow at 50" true (List.mem_assoc "slow" !got && List.assoc "slow" !got = 50.0)

let test_network_hold_release () =
  let e, net = make_net () in
  let got = ref [] in
  Network.register net ~node:1 (fun env -> got := env.Network.payload :: !got);
  Network.set_filter net (Some (fun _ -> Network.Hold));
  Network.send net ~src:0 ~dst:1 "a";
  Network.send net ~src:0 ~dst:1 "b";
  Engine.run e;
  check int "held" 2 (Network.held_count net);
  check int "nothing delivered yet" 0 (List.length !got);
  Network.set_filter net None;
  Network.release_held net;
  Engine.run e;
  check (Alcotest.list Alcotest.string) "released in send order" [ "a"; "b" ]
    (List.rev !got);
  check int "held drained" 0 (Network.held_count net)

let test_network_release_keep () =
  let e, net = make_net () in
  let got = ref [] in
  Network.register net ~node:1 (fun env -> got := env.Network.payload :: !got);
  Network.set_filter net (Some (fun _ -> Network.Hold));
  Network.send net ~src:0 ~dst:1 "keepme";
  Network.send net ~src:0 ~dst:1 "release";
  Network.set_filter net None;
  Network.release_held net ~keep:(fun env -> env.Network.payload = "keepme");
  Engine.run e;
  check (Alcotest.list Alcotest.string) "only one released" [ "release" ] !got;
  check int "one still held" 1 (Network.held_count net)

let test_network_forbid () =
  let _, net = make_net () in
  Network.forbid net (fun ~src ~dst -> src = dst);
  Alcotest.check_raises "self-send forbidden"
    (Invalid_argument "Network: send 2->2 is forbidden by the model") (fun () ->
      Network.send net ~src:2 ~dst:2 ())

let test_network_stats () =
  let e, net = make_net () in
  Network.register net ~node:1 (fun _ -> ());
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:0 ~dst:1 ();
  Engine.run e;
  let st = Network.stats net in
  check int "sent" 2 st.Network.sent;
  check int "delivered" 2 st.Network.delivered

(* ------------------------------------------------------------------ *)
(* Trace                                                                *)
(* ------------------------------------------------------------------ *)

let test_trace_order_and_fingerprint () =
  let t1 = Trace.create () and t2 = Trace.create () in
  List.iter
    (fun tr ->
      Trace.add tr ~time:1.0 ~tag:"send" "m1";
      Trace.add tr ~time:2.0 ~tag:"deliver" "m1")
    [ t1; t2 ];
  check int "length" 2 (Trace.length t1);
  check int "same fingerprint" (Trace.fingerprint t1) (Trace.fingerprint t2);
  Trace.add t2 ~time:3.0 ~tag:"drop" "m2";
  check bool "fingerprint changes" true
    (Trace.fingerprint t1 <> Trace.fingerprint t2)

let test_deterministic_trace_across_runs () =
  let run seed =
    let e = Engine.create ~seed () in
    let tr = Trace.create () in
    let net = Network.create e ~latency:(Latency.uniform ~lo:1.0 ~hi:5.0) ~trace:tr () in
    Network.register net ~node:1 (fun _ -> ());
    Network.register net ~node:2 (fun _ -> ());
    for i = 0 to 20 do
      Engine.schedule_at e ~time:(float_of_int i) (fun () ->
          Network.send net ~src:0 ~dst:(1 + (i mod 2)) i)
    done;
    Engine.run e;
    Trace.fingerprint tr
  in
  check int "same seed, same trace" (run 5) (run 5);
  check bool "different seed, different trace" true (run 5 <> run 6)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "simulation"
    [
      ( "rng",
        [
          tc "determinism" test_rng_determinism;
          tc "seed sensitivity" test_rng_seed_sensitivity;
          tc "int bounds" test_rng_int_bounds;
          tc "int_in_range" test_rng_int_in_range;
          tc "float bounds" test_rng_float_bounds;
          tc "int covers bound" test_rng_int_covers_bound;
          tc "split decorrelated" test_rng_split_decorrelated;
          tc "copy independent" test_rng_copy_independent;
          tc "shuffle permutation" test_rng_shuffle_permutation;
          tc "exponential positive" test_rng_exponential_positive;
          tc "exponential mean" test_rng_exponential_mean;
        ] );
      ( "heap",
        [
          tc "basic" test_heap_basic;
          tc "clear" test_heap_clear;
          tc "duplicates" test_heap_duplicates;
          QCheck_alcotest.to_alcotest heap_sort_property;
        ] );
      ( "engine",
        [
          tc "time order" test_engine_runs_in_time_order;
          tc "FIFO ties" test_engine_fifo_at_same_time;
          tc "rejects past" test_engine_rejects_past;
          tc "nested scheduling" test_engine_nested_scheduling;
          tc "run until" test_engine_until;
          tc "max events" test_engine_max_events;
          tc "stop" test_engine_stop;
          tc "negative delay clipped" test_engine_negative_delay_clipped;
        ] );
      ( "latency",
        [
          tc "constant" test_latency_constant;
          tc "uniform range" test_latency_uniform_range;
          tc "geo" test_latency_geo;
          tc "lognormal" test_latency_lognormal_positive;
          tc "matrix" test_latency_matrix;
        ] );
      ( "network",
        [
          tc "delivery" test_network_delivery;
          tc "crash drops" test_network_crash_drops;
          tc "crash in flight" test_network_crash_in_flight;
          tc "filter drop/delay" test_network_filter_drop_and_delay;
          tc "hold and release" test_network_hold_release;
          tc "release with keep" test_network_release_keep;
          tc "forbidden links" test_network_forbid;
          tc "stats" test_network_stats;
        ] );
      ( "trace",
        [
          tc "order and fingerprint" test_trace_order_and_fingerprint;
          tc "deterministic runs" test_deterministic_trace_across_runs;
        ] );
    ]
