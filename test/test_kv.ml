(* The sharded KV keyspace: placement ring properties, keyspace
   eviction, the keyed reactor path, mux demux hardening, and the
   YCSB driver end-to-end on both client planes. *)

open Kv
open Registers
open Transport
module Ycsb = Workload.Ycsb
module Rng = Simulation.Rng

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let tag ts wid = { Tstamp.ts; wid }

(* A deterministic key population: ranks through the YCSB namer, so the
   balance and remap numbers below are exact, not statistical. *)
let population n = List.init n Ycsb.key_name

(* ------------------------------------------------------------------ *)
(* Placement                                                            *)
(* ------------------------------------------------------------------ *)

let test_placement_balance () =
  (* 128 vnodes/group keep every group within a small factor of the
     mean, and no group ever starves.  Deterministic: the ring depends
     only on (groups, vnodes) and the population only on its size. *)
  let keys = population 2000 in
  List.iter
    (fun groups ->
      let p = Placement.make ~groups () in
      let counts = Placement.spread p keys in
      check int "one bucket per group" groups (Array.length counts);
      check int "every key placed" 2000 (Array.fold_left ( + ) 0 counts);
      let mean = 2000. /. float_of_int groups in
      Array.iteri
        (fun g c ->
          if c = 0 then
            Alcotest.failf "group %d/%d owns no keys" g groups;
          if float_of_int c > 3.0 *. mean then
            Alcotest.failf "group %d/%d owns %d keys (mean %.0f)" g groups c
              mean)
        counts)
    [ 1; 2; 3; 4; 5; 8 ]

let test_placement_remap_only_to_new_group () =
  (* The consistent-hashing contract, exactly: growing the ring from N
     to N+1 groups moves a key only if the NEW group takes it.  No key
     ever moves between two old groups. *)
  let keys = population 2000 in
  List.iter
    (fun groups ->
      let old_ring = Placement.make ~groups () in
      let new_ring = Placement.make ~groups:(groups + 1) () in
      let moved = ref 0 in
      List.iter
        (fun key ->
          let o = Placement.group_of old_ring key in
          let n = Placement.group_of new_ring key in
          if n <> o then begin
            incr moved;
            check int (key ^ " moved to the added group only") groups n
          end)
        keys;
      (* ~K/(N+1) keys move; allow a generous constant over the ideal
         share, still far below any rehash-everything behaviour. *)
      let ideal = 2000. /. float_of_int (groups + 1) in
      if float_of_int !moved > 2.5 *. ideal then
        Alcotest.failf "%d->%d groups moved %d keys (ideal %.0f)" groups
          (groups + 1) !moved ideal)
    [ 1; 2; 3; 4; 7 ]

let prop_remap_arbitrary_keys =
  QCheck.Test.make ~count:500 ~name:"placement: remap only to the new group"
    QCheck.(pair (int_range 1 7) (string_of_size (Gen.int_bound 64)))
    (fun (groups, key) ->
      let o = Placement.group_of (Placement.make ~groups ()) key in
      let n = Placement.group_of (Placement.make ~groups:(groups + 1) ()) key in
      n = o || n = groups)

let prop_group_in_range =
  QCheck.Test.make ~count:500 ~name:"placement: owner always in range"
    QCheck.(pair (int_range 1 9) (string_of_size (Gen.int_bound 64)))
    (fun (groups, key) ->
      let g = Placement.group_of (Placement.make ~groups ()) key in
      0 <= g && g < groups)

(* ------------------------------------------------------------------ *)
(* Keyspace                                                             *)
(* ------------------------------------------------------------------ *)

let test_keyspace_eviction_loss_free () =
  (* Far more keys than max_hot: every value written before a demotion
     must still read back after it — eviction parks state, never drops
     it. *)
  let ks = Keyspace.create ~max_hot:8 () in
  let nkeys = 100 in
  for i = 0 to nkeys - 1 do
    let rep =
      Keyspace.handle ks ~key:(Ycsb.key_name i) ~client:7
        (Wire.Update { tag = tag 1 0; payload = 1000 + i })
    in
    match rep with
    | Wire.Write_ack _ -> ()
    | Wire.Read_ack _ -> Alcotest.fail "update answered with a read ack"
  done;
  check int "all keys tracked" nkeys (Keyspace.key_count ks);
  if Keyspace.hot_count ks > 8 then
    Alcotest.failf "hot set %d exceeds max_hot 8" (Keyspace.hot_count ks);
  for i = nkeys - 1 downto 0 do
    match
      Keyspace.handle ks ~key:(Ycsb.key_name i) ~client:8 (Wire.Query [])
    with
    | Wire.Read_ack { current; _ } ->
      check int (Ycsb.key_name i ^ " survives demotion") (1000 + i)
        current.Wire.payload
    | Wire.Write_ack _ -> Alcotest.fail "query answered with a write ack"
  done

let test_keyspace_isolation () =
  (* Writes land on their own key only; an untouched key still serves
     the initial value. *)
  let ks = Keyspace.create () in
  ignore (Keyspace.handle ks ~key:"a" ~client:1
            (Wire.Update { tag = tag 3 1; payload = 111 }));
  ignore (Keyspace.handle ks ~key:"b" ~client:2
            (Wire.Update { tag = tag 2 2; payload = 222 }));
  let read key client =
    match Keyspace.handle ks ~key ~client (Wire.Query []) with
    | Wire.Read_ack { current; _ } -> current.Wire.payload
    | Wire.Write_ack _ -> Alcotest.fail "query answered with a write ack"
  in
  check int "a reads its own write" 111 (read "a" 3);
  check int "b reads its own write" 222 (read "b" 4);
  check int "c untouched" Wire.initial_value_entry.Wire.payload (read "c" 5)

let test_keyspace_save_load () =
  let ks = Keyspace.create ~max_hot:4 () in
  for i = 0 to 19 do
    ignore (Keyspace.handle ks ~key:(Ycsb.key_name i) ~client:1
              (Wire.Update { tag = tag 1 1; payload = 500 + i }))
  done;
  let reloaded = Keyspace.load (Keyspace.save ks) in
  check int "key count preserved" 20 (Keyspace.key_count reloaded);
  check int "all keys parked cold" 0 (Keyspace.hot_count reloaded);
  for i = 0 to 19 do
    match
      Keyspace.handle reloaded ~key:(Ycsb.key_name i) ~client:2
        (Wire.Query [])
    with
    | Wire.Read_ack { current; _ } ->
      check int "value survives the snapshot" (500 + i) current.Wire.payload
    | Wire.Write_ack _ -> Alcotest.fail "query answered with a write ack"
  done

(* ------------------------------------------------------------------ *)
(* YCSB generator                                                       *)
(* ------------------------------------------------------------------ *)

let test_ycsb_deterministic () =
  let draw () =
    let y = Ycsb.create ~dist:(Ycsb.Zipfian Ycsb.default_theta) ~keys:500 in
    let rng = Rng.create ~seed:99 in
    List.init 200 (fun _ ->
        (Ycsb.next_key y rng,
         match Ycsb.next_op Ycsb.A rng with `Read -> 0 | `Write -> 1))
  in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "same seed, same sequence" (draw ()) (draw ())

let test_ycsb_bounds_and_skew () =
  let n = 10_000 and keys = 1000 in
  let count dist =
    let y = Ycsb.create ~dist ~keys in
    let rng = Rng.create ~seed:7 in
    let zero = ref 0 in
    for _ = 1 to n do
      let k = Ycsb.next_key y rng in
      if k < 0 || k >= keys then Alcotest.failf "rank %d out of range" k;
      if k = 0 then incr zero
    done;
    !zero
  in
  let zipf = count (Ycsb.Zipfian Ycsb.default_theta) in
  let unif = count Ycsb.Uniform in
  (* Rank 0 draws ~1/zeta(K,theta) of zipfian traffic (hundreds of
     draws here) but only ~n/K of uniform traffic (~10). *)
  if zipf < 500 then Alcotest.failf "zipfian head too cold: %d" zipf;
  if unif > 100 then Alcotest.failf "uniform head too hot: %d" unif

let test_ycsb_mixes () =
  let writes mix =
    let rng = Rng.create ~seed:11 in
    let w = ref 0 in
    for _ = 1 to 1000 do
      match Ycsb.next_op mix rng with `Write -> incr w | `Read -> ()
    done;
    !w
  in
  check int "mix C never writes" 0 (writes Ycsb.C);
  let b = writes Ycsb.B in
  if b = 0 || b > 150 then Alcotest.failf "mix B writes off: %d/1000" b;
  let a = writes Ycsb.A in
  if a < 350 || a > 650 then Alcotest.failf "mix A writes off: %d/1000" a

(* ------------------------------------------------------------------ *)
(* The keyed reactor path                                               *)
(* ------------------------------------------------------------------ *)

let raw_send fd s =
  let b = Bytes.of_string s in
  Netio.write_all fd b 0 (Bytes.length b)

let raw_read_frames fd st buf want =
  let got = ref [] and n_got = ref 0 in
  while !n_got < want do
    let n = Netio.read fd buf 0 (Bytes.length buf) in
    if n = 0 then failwith "server closed a healthy connection";
    Codec.Stream.feed st buf n;
    let rec drain () =
      match Codec.Stream.next st with
      | Some f ->
        got := f :: !got;
        incr n_got;
        drain ()
      | None -> ()
    in
    drain ()
  done;
  List.rev !got

let test_reactor_interleaved_keyed_frames () =
  (* One connection carrying keyed and keyless frames interleaved —
     dripped in small chunks so the reactor holds partial keyed frames —
     must answer every frame in order, echoing each request's key, with
     per-key server state fully isolated. *)
  let replica = Replica.create () in
  let server = Server.start ~id:0 ~replica () in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let client = 42 in
  let frames =
    [
      Codec.Keyed_request
        { key = "a"; rt = 0; client;
          req = Wire.Update { tag = tag 1 client; payload = 111 } };
      Codec.Keyed_request
        { key = "b"; rt = 1; client;
          req = Wire.Update { tag = tag 1 client; payload = 222 } };
      Codec.Request { rt = 2; client; req = Wire.Query [] };
      Codec.Keyed_request { key = "a"; rt = 3; client; req = Wire.Query [] };
      Codec.Keyed_request { key = "b"; rt = 4; client; req = Wire.Query [] };
    ]
  in
  let wire = String.concat "" (List.map Codec.encode frames) in
  (* Drip the stream 7 bytes at a time: every keyed frame crosses a
     chunk boundary somewhere. *)
  let pos = ref 0 in
  while !pos < String.length wire do
    let n = min 7 (String.length wire - !pos) in
    raw_send fd (String.sub wire !pos n);
    pos := !pos + n
  done;
  let got =
    raw_read_frames fd (Codec.Stream.create ()) (Bytes.create 4096) 5
  in
  let payload_of = function
    | Wire.Read_ack { current; _ } -> current.Wire.payload
    | Wire.Write_ack _ -> Alcotest.fail "expected a read ack"
  in
  (match[@warning "-4"] got with
  | [
   Codec.Keyed_reply { key = "a"; rt = 0; client = 42; server = 0; rep = Wire.Write_ack _ };
   Codec.Keyed_reply { key = "b"; rt = 1; client = 42; server = 0; rep = Wire.Write_ack _ };
   Codec.Reply { rt = 2; client = 42; server = 0; rep = plain };
   Codec.Keyed_reply { key = "a"; rt = 3; client = 42; server = 0; rep = ra };
   Codec.Keyed_reply { key = "b"; rt = 4; client = 42; server = 0; rep = rb };
  ] ->
    (* The keyless register never saw a write; each key sees its own. *)
    check int "keyless register untouched"
      Wire.initial_value_entry.Wire.payload (payload_of plain);
    check int "key a isolated" 111 (payload_of ra);
    check int "key b isolated" 222 (payload_of rb)
  | _ -> Alcotest.fail "replies out of order, or keys not echoed");
  check int "server keyspace tracked both keys" 2
    (Keyspace.key_count (Server.keyspace server))

(* ------------------------------------------------------------------ *)
(* Mux demux hardening                                                  *)
(* ------------------------------------------------------------------ *)

let test_mux_drops_unknown_client_and_stale_key () =
  (* A misbehaving server answers a keyed round trip with: a reply for a
     client that does not exist, a reply for the right (client, rt) but
     the wrong key, and only then the real reply.  The plane must drop
     the first two into the stats counter and complete the round on the
     third — no wedge, no misroute. *)
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listener 1;
  let addr = Unix.getsockname listener in
  let server =
    Thread.create
      (fun () ->
        let fd =
          (* blocking listener: accept_nb parks until the client dials
             in, retrying EINTR behind Netio's choke point *)
          match Netio.accept_nb listener with
          | Some fd -> fd
          | None -> failwith "accept returned without a connection"
        in
        let st = Codec.Stream.create () in
        let buf = Bytes.create 4096 in
        let rec next_frame () =
          match Codec.Stream.next st with
          | Some f -> f
          | None ->
            let n = Netio.read fd buf 0 (Bytes.length buf) in
            if n = 0 then failwith "client closed early";
            Codec.Stream.feed st buf n;
            next_frame ()
        in
        let reply ~key ~rt ~client =
          Codec.Keyed_reply
            { key; rt; client; server = 0;
              rep = Wire.Write_ack { current = Wire.initial_value_entry } }
        in
        (match next_frame () with
        | Codec.Keyed_request { key; rt; client; _ } ->
          raw_send fd (Codec.encode (reply ~key ~rt ~client:9999));
          raw_send fd (Codec.encode (reply ~key:(key ^ "-stale") ~rt ~client));
          raw_send fd (Codec.encode (reply ~key ~rt ~client))
        | Codec.Request _ | Codec.Reply _ | Codec.Keyed_reply _ ->
          failwith "expected a keyed request");
        (* Second round: answer straight, to prove the plane did not
           wedge. *)
        (match next_frame () with
        | Codec.Keyed_request { key; rt; client; _ } ->
          raw_send fd (Codec.encode (reply ~key ~rt ~client))
        | Codec.Request _ | Codec.Reply _ | Codec.Keyed_reply _ ->
          failwith "expected a keyed request");
        Unix.close fd)
      ()
  in
  let mux = Mux.create ~servers:[| addr |] ~quorum:1 () in
  Fun.protect ~finally:(fun () -> Mux.shutdown mux; Thread.join server;
                         Unix.close listener)
  @@ fun () ->
  let h = Mux.client mux ~client:5 in
  let round key =
    let n = ref 0 in
    Mux.exec ~key h (Wire.Update { tag = tag 1 5; payload = 1 })
      (fun replies -> n := List.length replies);
    !n
  in
  check int "round completes past the junk replies" 1 (round "k1");
  check int "junk replies counted, not delivered" 2 (Mux.dropped_replies mux);
  check int "plane not wedged for the next key" 1 (round "k2");
  check int "no further drops" 2 (Mux.dropped_replies mux)

(* ------------------------------------------------------------------ *)
(* End-to-end: the YCSB driver over a sharded deployment                *)
(* ------------------------------------------------------------------ *)

let run_small transport =
  let cluster = Kv_cluster.start ~groups:2 ~s:3 ~tol:1 () in
  Fun.protect ~finally:(fun () -> Kv_cluster.shutdown cluster) @@ fun () ->
  let res =
    Kv_session.run ~transport ~cluster
      {
        Kv_session.clients = 4;
        ops_per_client = 15;
        keys = 40;
        dist = Ycsb.Zipfian Ycsb.default_theta;
        mix = Ycsb.A;
        seed = 21;
        sample_keys = 4;
        think = 0.0;
      }
  in
  check int "no client starved" 0 res.Kv_session.starved;
  check int "every op completed" 60 res.Kv_session.ops;
  check int "every op routed to a group" 60
    (Array.fold_left ( + ) 0 res.Kv_session.group_ops);
  check int "sampled the four hottest ranks" 4
    (List.length res.Kv_session.verdicts);
  List.iter
    (fun v ->
      if not v.Kv_session.atomic then
        Alcotest.failf "key %s not atomic" v.Kv_session.vkey)
    res.Kv_session.verdicts;
  if res.Kv_session.keys_touched < 1 then Alcotest.fail "no keys touched"

let test_session_mux () = run_small `Mux
let test_session_sockets () = run_small `Sockets

let test_session_live_check () =
  (* Live checking covers every key the workload touches — not just
     the sampled ranks — with one streaming instance per key under a
     shared watermark, and its verdicts must agree with the sampled
     batch verdicts. *)
  let cluster = Kv_cluster.start ~groups:2 ~s:3 ~tol:1 () in
  Fun.protect ~finally:(fun () -> Kv_cluster.shutdown cluster) @@ fun () ->
  let res =
    Kv_session.run ~live_check:true ~cluster
      {
        Kv_session.clients = 4;
        ops_per_client = 15;
        keys = 40;
        dist = Ycsb.Zipfian Ycsb.default_theta;
        mix = Ycsb.A;
        seed = 21;
        sample_keys = 4;
        think = 0.0;
      }
  in
  check int "every op completed" 60 res.Kv_session.ops;
  match res.Kv_session.online with
  | None -> Alcotest.fail "live_check:true returned no online report"
  | Some r ->
    check bool "online atomic" true (Transport.Check_sink.atomic r);
    check int "every completed op checked" 60 r.Transport.Check_sink.checked;
    check int "all touched keys checked" res.Kv_session.keys_touched
      r.Transport.Check_sink.keys;
    check bool "window bounded" true
      (r.Transport.Check_sink.peak_window <= 60);
    List.iter
      (fun v ->
        if not v.Kv_session.atomic then
          Alcotest.failf "batch disagrees on key %s" v.Kv_session.vkey)
      res.Kv_session.verdicts

let test_session_rejects_bounded_writers () =
  let cluster = Kv_cluster.start ~groups:1 ~s:3 ~tol:1 () in
  Fun.protect ~finally:(fun () -> Kv_cluster.shutdown cluster) @@ fun () ->
  Alcotest.check_raises "single-writer protocol at W=2"
    (Invalid_argument
       "Kv_session.run: ABD'95 SWMR accepts at most 1 writer(s)")
    (fun () ->
      ignore
        (Kv_session.run ~register:Registry.abd_swmr ~cluster
           { Kv_session.default_spec with clients = 2 }))

let test_recover_restart_preserves_keyspace () =
  (* Two servers, tol 0, so the quorum is both of them: writes reach
     server 0 before acking, and a post-restart read cannot complete
     without server 0's answer.  A recover-restart must rehydrate the
     keyspace snapshot (values per key), exactly as the single-register
     plane recovers its replica — we check server 0's keyspace directly
     and then end-to-end through the full-quorum read. *)
  let kc = Kv_cluster.start ~groups:1 ~s:2 ~tol:0 () in
  Fun.protect ~finally:(fun () -> Kv_cluster.shutdown kc) @@ fun () ->
  let router = Router.create ~transport:`Sockets ~clients:1 kc in
  Fun.protect ~finally:(fun () -> Router.shutdown router) @@ fun () ->
  let cl = Router.client router ~index:0 in
  Fun.protect ~finally:(fun () -> Router.close_client cl) @@ fun () ->
  let algo = Registry.client_algo Registry.abd_mwmr in
  let write key payload =
    let w = algo.Client_core.new_writer (Router.key_ctx cl key) ~writer:0 in
    let done_ = ref false in
    w ~payload ~k:(fun _ -> done_ := true);
    check bool (key ^ " write acked") true !done_
  in
  let read key =
    let r = algo.Client_core.new_reader (Router.key_ctx cl key) ~reader:0 in
    let got = ref min_int in
    r ~k:(fun v _ -> got := v);
    !got
  in
  write "alpha" 777;
  write "beta" 888;
  let g = Kv_cluster.group kc 0 in
  Cluster.kill g 0;
  Cluster.restart ~mode:`Recover g 0;
  let ks0 = Cluster.keyspace g 0 in
  let peek key =
    match[@warning "-4"]
      Keyspace.handle ks0 ~key ~client:999 (Wire.Query [])
    with
    | Wire.Read_ack { current; _ } -> current.Wire.payload
    | _ -> Alcotest.fail "expected Read_ack"
  in
  check int "restarted server rehydrated alpha" 777 (peek "alpha");
  check int "restarted server rehydrated beta" 888 (peek "beta");
  check int "alpha survives the recover-restart" 777 (read "alpha");
  check int "beta survives the recover-restart" 888 (read "beta")

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_remap_arbitrary_keys; prop_group_in_range ]

let () =
  Alcotest.run "kv"
    [
      ( "placement",
        [
          Alcotest.test_case "balance" `Quick test_placement_balance;
          Alcotest.test_case "remap only to new group" `Quick
            test_placement_remap_only_to_new_group;
        ]
        @ qsuite );
      ( "keyspace",
        [
          Alcotest.test_case "eviction is loss-free" `Quick
            test_keyspace_eviction_loss_free;
          Alcotest.test_case "per-key isolation" `Quick
            test_keyspace_isolation;
          Alcotest.test_case "save/load" `Quick test_keyspace_save_load;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "deterministic" `Quick test_ycsb_deterministic;
          Alcotest.test_case "bounds and skew" `Quick
            test_ycsb_bounds_and_skew;
          Alcotest.test_case "mixes" `Quick test_ycsb_mixes;
        ] );
      ( "reactor",
        [
          Alcotest.test_case "interleaved keyed frames" `Quick
            test_reactor_interleaved_keyed_frames;
        ] );
      ( "mux",
        [
          Alcotest.test_case "drops unknown client and stale key" `Quick
            test_mux_drops_unknown_client_and_stale_key;
        ] );
      ( "session",
        [
          Alcotest.test_case "mux plane" `Quick test_session_mux;
          Alcotest.test_case "sockets plane" `Quick test_session_sockets;
          Alcotest.test_case "live checker over all keys" `Quick
            test_session_live_check;
          Alcotest.test_case "writer bound rejected" `Quick
            test_session_rejects_bounded_writers;
          Alcotest.test_case "recover restart keeps the keyspace" `Quick
            test_recover_restart_preserves_keyspace;
        ] );
    ]
