(* Tests for the mechanized impossibility proofs: the execution model,
   chains α and β, the zigzag links of Figs. 4–7, the Theorem 1 driver,
   and the sieve of §4.2 / Fig. 8. *)

open Impossibility

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let r1_1 = Token.r ~reader:1 ~round:1
let r1_2 = Token.r ~reader:1 ~round:2
let r2_1 = Token.r ~reader:2 ~round:1
let r2_2 = Token.r ~reader:2 ~round:2

(* ------------------------------------------------------------------ *)
(* Exec_model                                                           *)
(* ------------------------------------------------------------------ *)

let test_make_rejects_duplicates () =
  check bool "duplicate token rejected" true
    (try ignore (Exec_model.make ~label:"x" [| [ Token.w1; Token.w1 ] |]); false
     with Invalid_argument _ -> true)

let test_make_rejects_round_order () =
  check bool "round 2 before round 1 rejected" true
    (try ignore (Exec_model.make ~label:"x" [| [ r1_2; r1_1 ] |]); false
     with Invalid_argument _ -> true)

let test_round2_without_round1_allowed () =
  (* Round 1 skipping a server that round 2 reaches is legal. *)
  let e = Exec_model.make ~label:"x" [| [ Token.w1; r1_2 ] |] in
  check int "one server" 1 (Exec_model.servers e)

let test_surgery () =
  let e = Exec_model.make ~label:"x" [| [ Token.w1; Token.w2; r1_1; r1_2 ] |] in
  let e' = Exec_model.remove e ~server:0 r1_2 in
  check int "removed" 3 (List.length (Exec_model.arrivals e' 0));
  let e'' = Exec_model.insert_after e' ~server:0 ~after:r1_1 r2_2 in
  check bool "inserted after" true
    (Exec_model.arrivals e'' 0 = [ Token.w1; Token.w2; r1_1; r2_2 ]);
  let e3 = Exec_model.append e' ~server:0 r2_1 in
  check bool "appended" true
    (Exec_model.arrivals e3 0 = [ Token.w1; Token.w2; r1_1; r2_1 ])

let test_surgery_errors () =
  let e = Exec_model.make ~label:"x" [| [ Token.w1 ] |] in
  check bool "insert after missing anchor" true
    (try ignore (Exec_model.insert_after e ~server:0 ~after:r1_1 r1_2); false
     with Invalid_argument _ -> true);
  check bool "append duplicate" true
    (try ignore (Exec_model.append e ~server:0 Token.w1); false
     with Invalid_argument _ -> true)

let test_view_prefixes () =
  let e =
    Exec_model.make ~label:"x"
      [| [ Token.w1; Token.w2; r1_1; r1_2 ]; [ Token.w2; Token.w1; r1_1; r1_2 ] |]
  in
  let v = Exec_model.view e ~reader:1 in
  check int "round1 on both servers" 2 (List.length v.Exec_model.round1);
  (match v.Exec_model.round1 with
  | [ e0; e1 ] ->
    check (Alcotest.list int) "s0 digits" [ 1; 2 ]
      (Exec_model.digits_of_prefix e0.Exec_model.prefix);
    check (Alcotest.list int) "s1 digits" [ 2; 1 ]
      (Exec_model.digits_of_prefix e1.Exec_model.prefix)
  | _ -> Alcotest.fail "expected two entries");
  match v.Exec_model.round2 with
  | [ e0; _ ] ->
    check int "round2 prefix includes round1" 3 (List.length e0.Exec_model.prefix)
  | _ -> Alcotest.fail "expected two entries"

let test_view_skip_absent () =
  let e = Exec_model.make ~label:"x" [| [ Token.w1; r1_1; r1_2 ]; [ Token.w1 ] |] in
  let v = Exec_model.view e ~reader:1 in
  check int "only one server answered" 1 (List.length v.Exec_model.round1)

let test_view_equality_is_structural () =
  let e1 = Exec_model.make ~label:"a" [| [ Token.w1; r1_1; r1_2; r2_2 ] |] in
  let e2 = Exec_model.make ~label:"b" [| [ Token.w1; r1_1; r1_2 ] |] in
  (* r2_2 arrives after r1_2, so reader 1 cannot see the difference. *)
  check bool "r1 views equal" true
    (Exec_model.view_equal (Exec_model.view e1 ~reader:1) (Exec_model.view e2 ~reader:1));
  let e3 = Exec_model.make ~label:"c" [| [ Token.w1; r2_2; r1_1; r1_2 ] |] in
  check bool "r1 sees r2 ahead of it" false
    (Exec_model.view_equal (Exec_model.view e1 ~reader:1) (Exec_model.view e3 ~reader:1))

(* ------------------------------------------------------------------ *)
(* Chain α                                                              *)
(* ------------------------------------------------------------------ *)

let test_alpha_digits () =
  let e = Chain_alpha.exec ~s:4 ~swapped:2 in
  let digits srv =
    Exec_model.digits_of_prefix (Exec_model.arrivals e srv)
  in
  check (Alcotest.list int) "swapped server" [ 2; 1 ] (digits 0);
  check (Alcotest.list int) "swapped server" [ 2; 1 ] (digits 1);
  check (Alcotest.list int) "unswapped" [ 1; 2 ] (digits 2);
  check (Alcotest.list int) "unswapped" [ 1; 2 ] (digits 3)

let test_alpha_critical_for_majority () =
  (* majority-last flips when more than half the servers show "21". *)
  match Chain_alpha.run ~s:5 Strategy.majority_last with
  | Chain_alpha.Critical { i1; returns } ->
    check int "critical at majority boundary" 3 i1;
    check int "head returns 2" 2 returns.(0);
    check int "tail returns 1" 1 returns.(5)
  | Chain_alpha.Anchor_violation _ -> Alcotest.fail "majority-last honours anchors"

let test_alpha_critical_first_server_rules () =
  (* first-server-rules flips as soon as s0 is swapped. *)
  match Chain_alpha.run ~s:5 Strategy.first_server_rules with
  | Chain_alpha.Critical { i1; _ } -> check int "critical at 1" 1 i1
  | Chain_alpha.Anchor_violation _ -> Alcotest.fail "anchors hold"

let test_alpha_anchor_violation_detected () =
  let bad = { Strategy.name = "always-1"; decide = (fun _ -> 1) } in
  match Chain_alpha.run ~s:4 bad with
  | Chain_alpha.Anchor_violation { expected; got; _ } ->
    check int "expected 2" 2 expected;
    check int "got 1" 1 got
  | Chain_alpha.Critical _ -> Alcotest.fail "always-1 must fail the head anchor"

let test_alpha_needs_three_servers () =
  check bool "S=2 rejected" true
    (try ignore (Chain_alpha.run ~s:2 Strategy.majority_last); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Chain β                                                              *)
(* ------------------------------------------------------------------ *)

let test_beta_structure () =
  let chain = Chain_beta.build ~s:4 ~stem_swapped:2 ~critical:1 in
  check int "S+1 executions" 5 (Array.length chain.Chain_beta.execs);
  let b2 = Chain_beta.exec chain 2 in
  (* Critical server carries only R1's tokens. *)
  check bool "critical skipped by R2" true
    (Exec_model.arrivals b2 1 = [ Token.w2; Token.w1; r1_1; r1_2 ]);
  (* Server 0 < swap index 2: R2(2) before R1(2). *)
  check bool "swapped read order" true
    (Exec_model.arrivals b2 0 = [ Token.w2; Token.w1; r1_1; r2_1; r2_2; r1_2 ]);
  (* Server 3 >= swap index: R1(2) before R2(2). *)
  check bool "unswapped read order" true
    (Exec_model.arrivals b2 3 = [ Token.w1; Token.w2; r1_1; r2_1; r1_2; r2_2 ])

let test_beta_r2_indistinguishability () =
  (* The §3.3 pillar: chains from the two stems around the critical
     server give R2 identical views. *)
  for s = 3 to 6 do
    for i1 = 1 to s do
      let c' = Chain_beta.build ~s ~stem_swapped:(i1 - 1) ~critical:(i1 - 1) in
      let c'' = Chain_beta.build ~s ~stem_swapped:i1 ~critical:(i1 - 1) in
      check bool
        (Printf.sprintf "R2 views agree (S=%d, i1=%d)" s i1)
        true
        (Chain_beta.r2_views_agree c' c'')
    done
  done

let test_beta_r1_distinguishes_stems () =
  (* R1 does not skip the critical server, so it CAN tell the stems
     apart — that asymmetry is the whole point. *)
  let c' = Chain_beta.build ~s:4 ~stem_swapped:1 ~critical:1 in
  let c'' = Chain_beta.build ~s:4 ~stem_swapped:2 ~critical:1 in
  let v' = Exec_model.view (Chain_beta.exec c' 0) ~reader:1 in
  let v'' = Exec_model.view (Chain_beta.exec c'' 0) ~reader:1 in
  check bool "R1 views differ" false (Exec_model.view_equal v' v'')

(* ------------------------------------------------------------------ *)
(* Zigzag links (Figs. 4–7)                                             *)
(* ------------------------------------------------------------------ *)

let test_zigzag_links_hold_everywhere () =
  (* Structural verification of every view equality, for all chain
     positions and all critical-server placements. *)
  for s = 3 to 6 do
    for i1 = 1 to s do
      let chain = Chain_beta.build ~s ~stem_swapped:(i1 - 1) ~critical:(i1 - 1) in
      for k = 0 to s - 1 do
        let step = Zigzag.build_step ~chain ~k in
        let report = Zigzag.verify_step ~chain step in
        check bool
          (Printf.sprintf "links hold (S=%d, i1=%d, k=%d)" s i1 k)
          true (Zigzag.link_ok report)
      done
    done
  done

let test_zigzag_special_case_no_temps () =
  let chain = Chain_beta.build ~s:4 ~stem_swapped:2 ~critical:2 in
  let step = Zigzag.build_step ~chain ~k:2 in
  check bool "no temp at k = critical" true (step.Zigzag.temp_k = None);
  check bool "gammas equal" true
    (Exec_model.equal step.Zigzag.gamma_k step.Zigzag.gamma'_k)

let test_zigzag_all_executions_order () =
  let chain = Chain_beta.build ~s:3 ~stem_swapped:1 ~critical:1 in
  let labels = List.map fst (Zigzag.all_executions ~chain) in
  check bool "starts at beta_0" true (List.hd labels = "beta_0");
  check bool "ends at beta_S" true (List.nth labels (List.length labels - 1) = "beta_3");
  check bool "gammas present" true (List.mem "gamma_0" labels)

(* ------------------------------------------------------------------ *)
(* Theorem 1 driver                                                     *)
(* ------------------------------------------------------------------ *)

let test_theorem_convicts_natural_strategies () =
  List.iter
    (fun strat ->
      List.iter
        (fun s ->
          let finding, stats = W1r2_theorem.run ~s strat in
          check bool
            (Printf.sprintf "%s convicted at S=%d" strat.Strategy.name s)
            true
            (W1r2_theorem.found_violation finding);
          check int
            (Printf.sprintf "%s: no structural link failures" strat.Strategy.name)
            0 stats.W1r2_theorem.links_failed)
        [ 3; 4; 5; 6 ])
    Strategy.natural

let test_theorem_convicts_constant_strategies () =
  List.iter
    (fun d ->
      let strat = { Strategy.name = "const"; decide = (fun _ -> d) } in
      let finding, _ = W1r2_theorem.run ~s:4 strat in
      match finding with
      | W1r2_theorem.Anchor_violation _ -> ()
      | W1r2_theorem.Read_disagreement _ | W1r2_theorem.Unresolved _ ->
        Alcotest.fail "constant strategies must die on an anchor")
    [ 1; 2 ]

let test_theorem_disagreement_is_concrete () =
  let finding, stats = W1r2_theorem.run ~s:4 Strategy.majority_last in
  (match finding with
  | W1r2_theorem.Read_disagreement { exec; r1; r2; _ } ->
    check bool "different returns" true (r1 <> r2);
    (* The witness execution is structurally valid: both writes appear
       on every server, read tokens never before writes. *)
    for srv = 0 to Exec_model.servers exec - 1 do
      let digits = Exec_model.digits_of_prefix (Exec_model.arrivals exec srv) in
      check int "both writes present" 2 (List.length digits)
    done
  | (W1r2_theorem.Anchor_violation _ | W1r2_theorem.Unresolved _) as other ->
    Alcotest.failf "expected a read disagreement, got %s"
      (Format.asprintf "%a" W1r2_theorem.pp_finding other));
  check bool "critical server recorded" true (stats.W1r2_theorem.i1 <> None)

let seeded_strategy_conviction =
  QCheck.Test.make ~name:"theorem convicts every seeded strategy" ~count:150
    QCheck.(pair (int_range 0 100000) (int_range 3 7))
    (fun (seed, s) ->
      let finding, stats = W1r2_theorem.run ~s (Strategy.seeded seed) in
      W1r2_theorem.found_violation finding && stats.W1r2_theorem.links_failed = 0)

let wild_strategy_conviction =
  QCheck.Test.make ~name:"theorem convicts every wild strategy" ~count:150
    QCheck.(pair (int_range 0 100000) (int_range 3 7))
    (fun (seed, s) ->
      let finding, _ = W1r2_theorem.run ~s (Strategy.seeded_wild seed) in
      W1r2_theorem.found_violation finding)

(* ------------------------------------------------------------------ *)
(* Sieve (§4.2 / Fig. 8)                                                *)
(* ------------------------------------------------------------------ *)

let test_sieve_honest_effect () =
  match Sieve.run ~s:5 ~effect:Sieve.honest (Sieve.crucial_of_last_digits ()) with
  | Sieve.Critical { sigma1; sigma2; i1; _ } ->
    check int "no affected servers" 0 (List.length sigma1);
    check int "all unaffected" 5 (List.length sigma2);
    check bool "critical found" true (i1 >= 1 && i1 <= 5)
  | Sieve.Too_few_unaffected _ | Sieve.Anchor_violation _ ->
    Alcotest.fail "honest effect must yield a critical server"

let test_sieve_flipping_effect () =
  match
    Sieve.run ~s:6 ~effect:(Sieve.flip_servers [ 0; 3 ])
      (Sieve.crucial_of_last_digits ())
  with
  | Sieve.Critical { sigma1; sigma2; i1; returns } ->
    check (Alcotest.list int) "sigma1" [ 0; 3 ] sigma1;
    check (Alcotest.list int) "sigma2" [ 1; 2; 4; 5 ] sigma2;
    check bool "critical inside shortened chain" true (i1 >= 1 && i1 <= 4);
    check int "chain shortened to |sigma2|+1" 5 (Array.length returns)
  | Sieve.Too_few_unaffected _ | Sieve.Anchor_violation _ ->
    Alcotest.fail "flipping effect must still yield a critical server"

let test_sieve_too_few_unaffected () =
  match
    Sieve.run ~s:4 ~effect:(Sieve.flip_servers [ 0; 1 ])
      (Sieve.crucial_of_last_digits ())
  with
  | Sieve.Too_few_unaffected { sigma2; _ } ->
    check int "only 2 unaffected" 2 (List.length sigma2)
  | Sieve.Anchor_violation _ | Sieve.Critical _ ->
    Alcotest.fail "expected too-few-unaffected"

let test_sieve_majority_strategy () =
  match Sieve.run ~s:7 ~effect:(Sieve.flip_servers [ 6 ]) Sieve.crucial_majority with
  | Sieve.Critical { i1; _ } -> check bool "critical found" true (i1 >= 1)
  | Sieve.Too_few_unaffected _ | Sieve.Anchor_violation _ ->
    Alcotest.fail "majority crucial strategy should survive anchors"

let sieve_random_effects =
  QCheck.Test.make ~name:"sieve handles random effects" ~count:200
    QCheck.(pair (int_range 0 10000) (int_range 5 10))
    (fun (seed, s) ->
      let effect = Sieve.seeded_effect ~seed ~flip_probability_pct:30 in
      match Sieve.run ~s ~effect (Sieve.crucial_of_last_digits ()) with
      | Sieve.Critical { sigma1; sigma2; i1; _ } ->
        List.length sigma1 + List.length sigma2 = s
        && i1 >= 1
        && i1 <= List.length sigma2
      | Sieve.Too_few_unaffected { sigma2; _ } -> List.length sigma2 < 3
      | Sieve.Anchor_violation _ -> false)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "impossibility"
    [
      ( "exec-model",
        [
          tc "duplicate tokens rejected" test_make_rejects_duplicates;
          tc "round order enforced" test_make_rejects_round_order;
          tc "round2 without round1 ok" test_round2_without_round1_allowed;
          tc "surgery" test_surgery;
          tc "surgery errors" test_surgery_errors;
          tc "view prefixes" test_view_prefixes;
          tc "view skips" test_view_skip_absent;
          tc "view equality" test_view_equality_is_structural;
        ] );
      ( "chain-alpha",
        [
          tc "digits layout" test_alpha_digits;
          tc "critical (majority)" test_alpha_critical_for_majority;
          tc "critical (first server)" test_alpha_critical_first_server_rules;
          tc "anchor violation" test_alpha_anchor_violation_detected;
          tc "needs S>=3" test_alpha_needs_three_servers;
        ] );
      ( "chain-beta",
        [
          tc "structure" test_beta_structure;
          tc "R2 indistinguishability" test_beta_r2_indistinguishability;
          tc "R1 distinguishes stems" test_beta_r1_distinguishes_stems;
        ] );
      ( "zigzag",
        [
          tc "links hold everywhere (Figs 4-7)" test_zigzag_links_hold_everywhere;
          tc "k = critical special case" test_zigzag_special_case_no_temps;
          tc "chain Z order" test_zigzag_all_executions_order;
        ] );
      ( "theorem",
        [
          tc "natural strategies convicted" test_theorem_convicts_natural_strategies;
          tc "constant strategies die on anchors" test_theorem_convicts_constant_strategies;
          tc "disagreement witness concrete" test_theorem_disagreement_is_concrete;
          QCheck_alcotest.to_alcotest seeded_strategy_conviction;
          QCheck_alcotest.to_alcotest wild_strategy_conviction;
        ] );
      ( "sieve",
        [
          tc "honest effect" test_sieve_honest_effect;
          tc "flipping effect" test_sieve_flipping_effect;
          tc "too few unaffected" test_sieve_too_few_unaffected;
          tc "majority strategy" test_sieve_majority_strategy;
          QCheck_alcotest.to_alcotest sieve_random_effects;
        ] );
    ]
